package tensor

import (
	"testing"
	"testing/quick"
)

func TestNewAndShape(t *testing.T) {
	tr := New(2, 3, 4)
	if tr.NumElements() != 24 || tr.Dims() != 3 || tr.SizeBytes() != 96 {
		t.Fatalf("unexpected %v", tr)
	}
	s := tr.Shape()
	s[0] = 99 // must not alias internal shape
	if tr.Shape()[0] != 2 {
		t.Fatal("Shape leaked internal slice")
	}
}

func TestScalar(t *testing.T) {
	tr := New()
	if tr.NumElements() != 1 {
		t.Fatalf("scalar elems = %d", tr.NumElements())
	}
}

func TestFromDataValidation(t *testing.T) {
	if _, err := FromData([]float32{1, 2, 3}, 2, 2); err == nil {
		t.Fatal("expected count mismatch error")
	}
	if _, err := FromData(nil, -1); err == nil {
		t.Fatal("expected negative dim error")
	}
	tr, err := FromData([]float32{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v", tr.At(1, 0))
	}
}

func TestAtSetRowMajor(t *testing.T) {
	tr := New(2, 3)
	tr.Set(7, 1, 2)
	if tr.Data()[5] != 7 {
		t.Fatalf("row-major layout broken: %v", tr.Data())
	}
	if tr.At(1, 2) != 7 {
		t.Fatal("At after Set")
	}
}

func TestCloneIsolation(t *testing.T) {
	tr := New(4)
	tr.Set(1, 0)
	cp := tr.Clone()
	cp.Set(9, 0)
	if tr.At(0) != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestReshape(t *testing.T) {
	tr := New(6)
	v, err := tr.Reshape(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	v.Set(5, 0, 1)
	if tr.At(1) != 5 {
		t.Fatal("reshape must share data")
	}
	if _, err := tr.Reshape(4); err == nil {
		t.Fatal("expected reshape size error")
	}
}

func TestPanicsOnBadIndex(t *testing.T) {
	tr := New(2, 2)
	for _, fn := range []func(){
		func() { tr.At(2, 0) },
		func() { tr.At(0) },
		func() { tr.Set(1, -1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestQuickOffsetBijective(t *testing.T) {
	tr := New(3, 5, 7)
	f := func(a, b, c uint8) bool {
		i, j, k := int(a)%3, int(b)%5, int(c)%7
		tr.Set(float32(i*100+j*10+k), i, j, k)
		return tr.At(i, j, k) == float32(i*100+j*10+k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
