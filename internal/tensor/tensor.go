// Package tensor provides the dense float32 tensor type that the model
// substrate, the neural-network substrate and the FedSZ pipeline share.
// FL model parameters are flattened to 1-D before compression
// (paper Algorithm 1), so the type deliberately stays minimal: a shape
// and contiguous row-major data.
package tensor

import (
	"fmt"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	shape []int
	data  []float32
}

// New allocates a zero-filled tensor with the given shape. An empty
// shape yields a scalar (one element).
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d", d))
		}
		n *= d
	}
	return &Tensor{
		shape: append([]int(nil), shape...),
		data:  make([]float32, n),
	}
}

// FromData wraps data in a tensor of the given shape. The slice is
// retained, not copied.
func FromData(data []float32, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d < 0 {
			return nil, fmt.Errorf("tensor: negative dimension %d", d)
		}
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("tensor: shape %v wants %d elements, data has %d", shape, n, len(data))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}, nil
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// NumElements returns the total element count.
func (t *Tensor) NumElements() int { return len(t.data) }

// SizeBytes returns the in-memory payload size.
func (t *Tensor) SizeBytes() int { return len(t.data) * 4 }

// Data returns the underlying storage. Mutations are visible to the
// tensor; callers that need isolation should Clone first.
func (t *Tensor) Data() []float32 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	data := make([]float32, len(t.data))
	copy(data, t.data)
	return &Tensor{shape: append([]int(nil), t.shape...), data: data}
}

// Reshape returns a view of the same data with a new shape. The element
// count must match.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	return FromData(t.data, shape...)
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 {
	return t.data[t.offset(idx)]
}

// Set assigns the element at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.data[t.offset(idx)] = v
}

// String implements fmt.Stringer with a compact description.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v(%d elems)", t.shape, len(t.data))
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d != shape rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dim %d (size %d)", x, i, t.shape[i]))
		}
		off = off*t.shape[i] + x
	}
	return off
}
