// Package scidata generates smooth synthetic scientific fields standing
// in for the MIRANDA large-eddy-simulation dataset that paper Fig. 2
// contrasts with FL model parameters. The generator performs spectral
// synthesis: a sum of low-frequency modes with power-law amplitude
// decay, which reproduces the qualitative smoothness of density and
// velocity slices from hydrodynamics simulations.
package scidata

import (
	"math"

	"fedsz/internal/stats"
)

// Field describes a synthetic scientific field.
type Field struct {
	// Name labels the field ("density", "velocityy", ...).
	Name string
	// Modes is the number of spectral components.
	Modes int
	// Decay is the power-law exponent of the amplitude spectrum;
	// larger values give smoother fields.
	Decay float64
	// Offset shifts the field (density-like fields are positive).
	Offset float64
}

// Density returns a density-like field description (positive, very
// smooth — compare paper Fig. 2c).
func Density() Field {
	return Field{Name: "density", Modes: 12, Decay: 2.2, Offset: 2.5}
}

// VelocityY returns a velocity-component-like field description
// (signed, smooth with more mid-frequency content — paper Fig. 2d).
func VelocityY() Field {
	return Field{Name: "velocityy", Modes: 24, Decay: 1.6}
}

// Slice synthesizes a 1-D slice of n samples of the field. slice
// selects different phases, mirroring the paper's "slice 1" vs
// "slice 100" curves; the same (field, slice, n) triple is
// deterministic.
func (f Field) Slice(n, slice int) []float32 {
	rng := stats.NewRNG(int64(slice)*7919 + int64(len(f.Name)))
	type mode struct {
		freq, amp, phase float64
	}
	modes := make([]mode, f.Modes)
	for k := range modes {
		freq := float64(k + 1)
		modes[k] = mode{
			freq:  freq,
			amp:   1 / math.Pow(freq, f.Decay),
			phase: rng.Float64() * 2 * math.Pi,
		}
	}
	out := make([]float32, n)
	for i := range out {
		x := float64(i) / float64(n)
		v := f.Offset
		for _, m := range modes {
			v += m.amp * math.Sin(2*math.Pi*m.freq*x+m.phase)
		}
		out[i] = float32(v)
	}
	return out
}
