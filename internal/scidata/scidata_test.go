package scidata

import (
	"testing"

	"fedsz/internal/model"
	"fedsz/internal/stats"
)

func toF64(xs []float32) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

func TestDeterministic(t *testing.T) {
	a := Density().Slice(256, 1)
	b := Density().Slice(256, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("slices must be deterministic")
		}
	}
	c := Density().Slice(256, 100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different slices must differ")
	}
}

func TestDensityIsPositive(t *testing.T) {
	for _, v := range Density().Slice(1024, 1) {
		if v <= 0 {
			t.Fatalf("density value %v <= 0", v)
		}
	}
}

// TestScientificDataSmootherThanModelParams reproduces the core claim
// of paper Fig. 2: scientific fields are far smoother than FL model
// parameter streams.
func TestScientificDataSmootherThanModelParams(t *testing.T) {
	sci := stats.Roughness(toF64(VelocityY().Slice(500, 1)))
	sd := model.BuildStateDict(model.AlexNet(8), 3)
	flat := sd.FlatWeights()
	params := stats.Roughness(toF64(flat[1000:1500]))
	if sci*5 > params {
		t.Fatalf("scientific roughness %v should be ≪ parameter roughness %v", sci, params)
	}
}
