// Package dataset provides the synthetic image-classification datasets
// standing in for CIFAR-10, Fashion-MNIST and Caltech101 (paper Table
// IV): each class is a smooth random template; samples are noisy,
// scaled copies. Input dimensions and class counts match the real
// datasets; semantics do not need to — the accuracy experiments only
// require learnable structure whose training is perturbed by real
// compressor noise (DESIGN.md §1).
package dataset

import (
	"fmt"
	"math"

	"fedsz/internal/nn"
	"fedsz/internal/stats"
)

// Dataset is a labeled dense-feature dataset.
type Dataset struct {
	Name    string
	X       []float32 // row-major [N, Dim]
	Y       []int
	N       int
	Dim     int
	Classes int
}

// Spec describes a synthetic dataset family.
type Spec struct {
	Name    string
	Dim     int     // flattened input dimension
	Classes int     //
	Noise   float64 // per-pixel noise std relative to template scale
	// Sep scales the class-specific template component relative to the
	// shared base image. Small Sep means classes share most of their
	// structure (as natural images do), which makes learning gradual
	// rather than one-shot.
	Sep float64
}

// CIFAR10 mirrors CIFAR-10's geometry: 32×32×3, 10 classes. The
// sep/noise pairing is tuned so federated training converges gradually
// over ~10 rounds, as in the paper's Fig. 4 curves.
func CIFAR10() Spec {
	return Spec{Name: "cifar10", Dim: 32 * 32 * 3, Classes: 10, Noise: 1.6, Sep: 0.2}
}

// FashionMNIST mirrors Fashion-MNIST: 28×28, 10 classes (the easiest
// of the three tasks, as in the paper's Fig. 4 ordering).
func FashionMNIST() Spec {
	return Spec{Name: "fmnist", Dim: 28 * 28, Classes: 10, Noise: 1.2, Sep: 0.4}
}

// Caltech101 mirrors Caltech101's harder profile: larger inputs
// (downscaled here for tractability) and 101 classes.
func Caltech101() Spec {
	return Spec{Name: "caltech101", Dim: 48 * 48 * 3, Classes: 101, Noise: 1.3, Sep: 0.5}
}

// Specs returns the paper's three datasets (Table IV order).
func Specs() []Spec { return []Spec{CIFAR10(), FashionMNIST(), Caltech101()} }

// ByName returns the spec for a dataset name.
func ByName(name string) (Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown dataset %q", name)
}

// Generate synthesizes n samples of the dataset family. Class
// templates are smooth random fields; each sample adds Gaussian pixel
// noise and a random per-sample gain, which keeps the task learnable
// but not trivial.
func (s Spec) Generate(n int, seed int64) *Dataset {
	rng := stats.NewRNG(seed)
	smoothWalk := func(scale float64) []float32 {
		t := make([]float32, s.Dim)
		v := 0.0
		for i := range t {
			v += rng.NormFloat64() * 0.25 * scale
			v *= 0.98
			t[i] = float32(v)
		}
		return t
	}
	sep := s.Sep
	if sep == 0 {
		sep = 0.2
	}
	// Classes share a smooth base image plus a small class-specific
	// deviation, mirroring how natural image classes share statistics.
	base := smoothWalk(1)
	templates := make([][]float32, s.Classes)
	for c := range templates {
		delta := smoothWalk(sep)
		t := make([]float32, s.Dim)
		for i := range t {
			t[i] = base[i] + delta[i]
		}
		templates[c] = t
	}
	d := &Dataset{
		Name:    s.Name,
		X:       make([]float32, n*s.Dim),
		Y:       make([]int, n),
		N:       n,
		Dim:     s.Dim,
		Classes: s.Classes,
	}
	for i := 0; i < n; i++ {
		c := i % s.Classes // balanced
		d.Y[i] = c
		gain := float32(1 + rng.NormFloat64()*0.1)
		row := d.X[i*s.Dim : (i+1)*s.Dim]
		t := templates[c]
		for j := range row {
			row[j] = gain*t[j] + float32(rng.NormFloat64()*s.Noise)
		}
		standardize(row)
	}
	return d
}

// standardize normalizes a sample to zero mean and unit variance — the
// usual input-normalization step, which keeps gradient scales
// comparable across input dimensions and datasets.
func standardize(row []float32) {
	var sum float64
	for _, v := range row {
		sum += float64(v)
	}
	mean := sum / float64(len(row))
	var ss float64
	for _, v := range row {
		dv := float64(v) - mean
		ss += dv * dv
	}
	std := math.Sqrt(ss / float64(len(row)))
	if std == 0 {
		std = 1
	}
	for i, v := range row {
		row[i] = float32((float64(v) - mean) / std)
	}
}

// TrainTest splits the dataset into train/test partitions after a
// deterministic shuffle. frac is the training fraction. Both partitions
// share the class templates (unlike two Generate calls, which would
// synthesize unrelated tasks).
func (d *Dataset) TrainTest(frac float64, seed int64) (*Dataset, *Dataset) {
	cp := &Dataset{
		Name:    d.Name,
		X:       append([]float32(nil), d.X...),
		Y:       append([]int(nil), d.Y...),
		N:       d.N,
		Dim:     d.Dim,
		Classes: d.Classes,
	}
	cp.Shuffle(seed)
	nTrain := int(float64(cp.N) * frac)
	train := &Dataset{
		Name: d.Name + "/train", X: cp.X[:nTrain*cp.Dim], Y: cp.Y[:nTrain],
		N: nTrain, Dim: cp.Dim, Classes: cp.Classes,
	}
	test := &Dataset{
		Name: d.Name + "/test", X: cp.X[nTrain*cp.Dim:], Y: cp.Y[nTrain:],
		N: cp.N - nTrain, Dim: cp.Dim, Classes: cp.Classes,
	}
	return train, test
}

// Batch converts samples [lo, hi) into an nn.Batch plus labels.
func (d *Dataset) Batch(lo, hi int) (*nn.Batch, []int) {
	if lo < 0 || hi > d.N || lo > hi {
		panic(fmt.Sprintf("dataset: batch [%d,%d) out of range (N=%d)", lo, hi, d.N))
	}
	b := nn.NewBatch(hi-lo, d.Dim)
	copy(b.Data, d.X[lo*d.Dim:hi*d.Dim])
	labels := make([]int, hi-lo)
	copy(labels, d.Y[lo:hi])
	return b, labels
}

// Shuffle permutes samples in place, deterministically per seed.
func (d *Dataset) Shuffle(seed int64) {
	rng := stats.NewRNG(seed)
	tmp := make([]float32, d.Dim)
	for i := d.N - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		if i == j {
			continue
		}
		ri := d.X[i*d.Dim : (i+1)*d.Dim]
		rj := d.X[j*d.Dim : (j+1)*d.Dim]
		copy(tmp, ri)
		copy(ri, rj)
		copy(rj, tmp)
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	}
}

// Split partitions the dataset IID into k equal shards (the paper's
// multi-client setup) — sample i goes to shard i mod k.
func (d *Dataset) Split(k int) []*Dataset {
	if k <= 0 {
		panic("dataset: split needs k > 0")
	}
	shards := make([]*Dataset, k)
	for s := range shards {
		count := d.N / k
		if s < d.N%k {
			count++
		}
		shards[s] = &Dataset{
			Name:    fmt.Sprintf("%s/shard%d", d.Name, s),
			X:       make([]float32, 0, count*d.Dim),
			Y:       make([]int, 0, count),
			Dim:     d.Dim,
			Classes: d.Classes,
		}
	}
	for i := 0; i < d.N; i++ {
		s := shards[i%k]
		s.X = append(s.X, d.X[i*d.Dim:(i+1)*d.Dim]...)
		s.Y = append(s.Y, d.Y[i])
		s.N++
	}
	return shards
}

// SplitDirichlet partitions the dataset across k clients with
// label-skewed (non-IID) proportions drawn from a symmetric
// Dirichlet(alpha) per class — the standard federated heterogeneity
// model. Small alpha concentrates each class on few clients; large
// alpha approaches the IID split.
func (d *Dataset) SplitDirichlet(k int, alpha float64, seed int64) []*Dataset {
	if k <= 0 {
		panic("dataset: split needs k > 0")
	}
	if alpha <= 0 {
		panic("dataset: dirichlet alpha must be positive")
	}
	rng := stats.NewRNG(seed)
	shards := make([]*Dataset, k)
	for s := range shards {
		shards[s] = &Dataset{
			Name:    fmt.Sprintf("%s/dir%d", d.Name, s),
			Dim:     d.Dim,
			Classes: d.Classes,
		}
	}
	// Group sample indices by class.
	byClass := make([][]int, d.Classes)
	for i := 0; i < d.N; i++ {
		byClass[d.Y[i]] = append(byClass[d.Y[i]], i)
	}
	assign := func(shard *Dataset, idx int) {
		shard.X = append(shard.X, d.X[idx*d.Dim:(idx+1)*d.Dim]...)
		shard.Y = append(shard.Y, d.Y[idx])
		shard.N++
	}
	for _, idxs := range byClass {
		if len(idxs) == 0 {
			continue
		}
		props := dirichlet(rng, k, alpha)
		// Convert proportions to cumulative cut points over the class.
		cum := 0.0
		start := 0
		for s := 0; s < k; s++ {
			cum += props[s]
			end := int(cum * float64(len(idxs)))
			if s == k-1 {
				end = len(idxs)
			}
			for _, idx := range idxs[start:end] {
				assign(shards[s], idx)
			}
			start = end
		}
	}
	return shards
}

// dirichlet samples a symmetric Dirichlet(alpha) via normalized Gamma
// draws (Marsaglia–Tsang for alpha >= 1; boosting for alpha < 1).
func dirichlet(rng interface {
	Float64() float64
	NormFloat64() float64
}, k int, alpha float64) []float64 {
	out := make([]float64, k)
	var sum float64
	for i := range out {
		g := gammaSample(rng, alpha)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(k)
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

func gammaSample(rng interface {
	Float64() float64
	NormFloat64() float64
}, alpha float64) float64 {
	if alpha < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := rng.Float64()
		if u == 0 {
			u = 1e-300
		}
		return gammaSample(rng, alpha+1) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Chance returns the chance-level accuracy (1/classes) — the floor the
// paper's SZx rows collapse to.
func (d *Dataset) Chance() float64 { return 1 / float64(d.Classes) }

// SNR estimates the dataset's signal-to-noise ratio in dB, useful for
// sanity checks of generated data.
func (d *Dataset) SNR() float64 {
	if d.N == 0 {
		return 0
	}
	classSum := make([][]float64, d.Classes)
	classCount := make([]int, d.Classes)
	for c := range classSum {
		classSum[c] = make([]float64, d.Dim)
	}
	for i := 0; i < d.N; i++ {
		c := d.Y[i]
		classCount[c]++
		row := d.X[i*d.Dim : (i+1)*d.Dim]
		for j, v := range row {
			classSum[c][j] += float64(v)
		}
	}
	var signal, noise float64
	var count int
	for i := 0; i < d.N; i++ {
		c := d.Y[i]
		if classCount[c] == 0 {
			continue
		}
		row := d.X[i*d.Dim : (i+1)*d.Dim]
		for j, v := range row {
			mean := classSum[c][j] / float64(classCount[c])
			signal += mean * mean
			dv := float64(v) - mean
			noise += dv * dv
			count++
		}
	}
	if noise == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(signal/noise)
}
