package dataset

import (
	"testing"

	"fedsz/internal/nn"
)

func TestSpecs(t *testing.T) {
	specs := Specs()
	if len(specs) != 3 {
		t.Fatalf("want 3 specs, got %d", len(specs))
	}
	if specs[0].Dim != 3072 || specs[0].Classes != 10 {
		t.Fatalf("cifar10 spec wrong: %+v", specs[0])
	}
	if specs[1].Dim != 784 {
		t.Fatalf("fmnist spec wrong: %+v", specs[1])
	}
	if specs[2].Classes != 101 {
		t.Fatalf("caltech spec wrong: %+v", specs[2])
	}
	if _, err := ByName("cifar10"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("imagenet"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestGenerateDeterministicAndBalanced(t *testing.T) {
	d1 := CIFAR10().Generate(200, 42)
	d2 := CIFAR10().Generate(200, 42)
	for i := range d1.X {
		if d1.X[i] != d2.X[i] {
			t.Fatal("generation must be deterministic")
		}
	}
	counts := make([]int, d1.Classes)
	for _, y := range d1.Y {
		counts[y]++
	}
	for c, n := range counts {
		if n != 20 {
			t.Fatalf("class %d has %d samples, want 20", c, n)
		}
	}
}

func TestBatch(t *testing.T) {
	d := FashionMNIST().Generate(50, 1)
	b, labels := d.Batch(10, 20)
	if b.N != 10 || b.Dim != 784 || len(labels) != 10 {
		t.Fatalf("batch shape %d×%d/%d", b.N, b.Dim, len(labels))
	}
	if b.Row(0)[0] != d.X[10*784] {
		t.Fatal("batch content mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range batch")
		}
	}()
	d.Batch(45, 55)
}

func TestSplitPreservesSamples(t *testing.T) {
	d := CIFAR10().Generate(103, 7)
	shards := d.Split(4)
	total := 0
	for _, s := range shards {
		total += s.N
		if s.Dim != d.Dim || s.Classes != d.Classes {
			t.Fatal("shard metadata")
		}
	}
	if total != d.N {
		t.Fatalf("split lost samples: %d != %d", total, d.N)
	}
	// Sizes within 1 of each other.
	for _, s := range shards {
		if s.N < d.N/4 || s.N > d.N/4+1 {
			t.Fatalf("unbalanced shard: %d", s.N)
		}
	}
}

func TestShuffleKeepsPairs(t *testing.T) {
	d := FashionMNIST().Generate(60, 3)
	// Tag each row's first feature with its label to detect pair breaks.
	for i := 0; i < d.N; i++ {
		d.X[i*d.Dim] = float32(d.Y[i]) * 1000
	}
	d.Shuffle(9)
	for i := 0; i < d.N; i++ {
		if d.X[i*d.Dim] != float32(d.Y[i])*1000 {
			t.Fatal("shuffle broke X/Y pairing")
		}
	}
}

func TestChance(t *testing.T) {
	d := Caltech101().Generate(101, 1)
	if d.Chance() != 1.0/101 {
		t.Fatalf("chance = %v", d.Chance())
	}
}

func TestTrainTestSplit(t *testing.T) {
	d := CIFAR10().Generate(100, 4)
	train, test := d.TrainTest(0.8, 1)
	if train.N != 80 || test.N != 20 {
		t.Fatalf("split sizes %d/%d", train.N, test.N)
	}
	if len(train.X) != 80*d.Dim || len(test.X) != 20*d.Dim {
		t.Fatal("split data sizes")
	}
	// Original untouched.
	if d.N != 100 {
		t.Fatal("split mutated source")
	}
}

func TestDatasetIsLearnable(t *testing.T) {
	// An MLP must beat chance comfortably after a few epochs — the
	// property the accuracy experiments rely on. Train and test must
	// share class templates, hence the TrainTest split.
	spec := CIFAR10()
	all := spec.Generate(600, 11)
	train, test := all.TrainTest(2.0/3, 5)
	net := nn.AlexNetMini(spec.Dim, spec.Classes, 5)
	for epoch := 0; epoch < 5; epoch++ {
		train.Shuffle(int64(epoch))
		for lo := 0; lo+20 <= train.N; lo += 20 {
			x, y := train.Batch(lo, lo+20)
			net.TrainBatch(x, y, 0.01, 0.9)
		}
	}
	x, y := test.Batch(0, test.N)
	acc := net.Accuracy(x, y)
	if acc < 3*test.Chance() {
		t.Fatalf("accuracy %.3f should beat 3× chance %.3f", acc, 3*test.Chance())
	}
}

func TestSNRIsPositiveForStructuredData(t *testing.T) {
	d := CIFAR10().Generate(300, 2)
	if d.SNR() < -20 {
		t.Fatalf("SNR %.1f dB implausibly low", d.SNR())
	}
	var empty Dataset
	if empty.SNR() != 0 {
		t.Fatal("empty SNR should be 0")
	}
}
