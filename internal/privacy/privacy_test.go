package privacy

import (
	"testing"

	"fedsz/internal/core"
	"fedsz/internal/lossy"
	"fedsz/internal/model"
	"fedsz/internal/stats"
)

func TestResiduals(t *testing.T) {
	r, err := Residuals([]float32{1, 2}, []float32{0.5, 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if r[0] != 0.5 || r[1] != -0.5 {
		t.Fatalf("residuals = %v", r)
	}
	if _, err := Residuals([]float32{1}, []float32{1, 2}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(nil, 10); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := Analyze([]float64{1}, 0); err == nil {
		t.Fatal("expected bins error")
	}
}

func TestAnalyzeSyntheticLaplace(t *testing.T) {
	rng := stats.NewRNG(1)
	xs := make([]float64, 30000)
	for i := range xs {
		xs[i] = stats.SampleLaplace(rng, 0, 0.01)
	}
	a, err := Analyze(xs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !a.LaplacePreferred() {
		t.Fatalf("Laplace sample should prefer Laplace: KS %v vs %v", a.KSLaplace, a.KSGaussian)
	}
	if a.Histogram.Total != len(xs) {
		t.Fatal("histogram lost samples")
	}
}

// TestCompressionErrorLooksLaplacian reproduces the paper's Fig. 10
// finding: residuals of the full FedSZ pipeline (per-tensor relative
// bounds, so each tensor contributes a different error scale) across a
// model's weights fit a Laplace distribution better than a Gaussian.
// A single tensor's residual is near-uniform; the Laplacian shape
// emerges from the scale mixture across tensors.
func TestCompressionErrorLooksLaplacian(t *testing.T) {
	sd := model.BuildStateDict(model.AlexNet(16), 5)
	for _, bound := range []float64{0.1, 0.05} {
		p, err := core.NewPipeline(core.Config{Bound: lossy.RelBound(bound)})
		if err != nil {
			t.Fatal(err)
		}
		buf, _, err := p.Compress(sd)
		if err != nil {
			t.Fatal(err)
		}
		recon, err := core.Decompress(buf)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Residuals(sd.FlatWeights(), recon.FlatWeights())
		if err != nil {
			t.Fatal(err)
		}
		a, err := Analyze(res, 60)
		if err != nil {
			t.Fatal(err)
		}
		if !a.LaplacePreferred() {
			t.Errorf("bound %v: KS(Laplace)=%.4f should beat KS(Gaussian)=%.4f",
				bound, a.KSLaplace, a.KSGaussian)
		}
		// Residuals are symmetric around ~0.
		if a.Summary.Mean > 0.1*a.Summary.Std && a.Summary.Std > 0 {
			t.Errorf("bound %v: residual mean %v not centered (std %v)",
				bound, a.Summary.Mean, a.Summary.Std)
		}
	}
}
