// Package privacy analyzes the error introduced by lossy compression —
// the paper's §VII-D observation that decompression residuals resemble
// Laplacian noise, suggesting differential-privacy potential. The
// analysis takes the pairwise difference of original and decompressed
// weights, fits Laplace and Gaussian distributions by maximum
// likelihood, and compares goodness of fit with Kolmogorov–Smirnov
// distances.
package privacy

import (
	"errors"

	"fedsz/internal/stats"
)

// Analysis summarizes one residual distribution (paper Fig. 10).
type Analysis struct {
	Residuals  []float64
	Summary    stats.Summary
	Histogram  *stats.Histogram
	Laplace    stats.LaplaceFit
	Gaussian   stats.GaussianFit
	KSLaplace  float64
	KSGaussian float64
}

// LaplacePreferred reports whether the Laplace fit beats the Gaussian
// one — the paper's qualitative finding.
func (a Analysis) LaplacePreferred() bool { return a.KSLaplace < a.KSGaussian }

// Residuals returns the elementwise differences original−decompressed.
func Residuals(original, decompressed []float32) ([]float64, error) {
	if len(original) != len(decompressed) {
		return nil, errors.New("privacy: length mismatch")
	}
	out := make([]float64, len(original))
	for i := range original {
		out[i] = float64(original[i]) - float64(decompressed[i])
	}
	return out, nil
}

// Analyze fits the residual distribution with bins histogram buckets.
func Analyze(residuals []float64, bins int) (Analysis, error) {
	if len(residuals) == 0 {
		return Analysis{}, errors.New("privacy: no residuals")
	}
	h, err := stats.NewHistogram(residuals, bins)
	if err != nil {
		return Analysis{}, err
	}
	lap := stats.FitLaplace(residuals)
	gau := stats.FitGaussian(residuals)
	return Analysis{
		Residuals:  residuals,
		Summary:    stats.Summarize(residuals),
		Histogram:  h,
		Laplace:    lap,
		Gaussian:   gau,
		KSLaplace:  stats.KSStatistic(residuals, lap.CDF),
		KSGaussian: stats.KSStatistic(residuals, gau.CDF),
	}, nil
}
