package baseline

import (
	"testing"

	"fedsz/internal/model"
	"fedsz/internal/nn"
	"fedsz/internal/tensor"
)

func TestSparseCodecRoundTrip(t *testing.T) {
	sd := nn.AlexNetMini(64, 4, 1).StateDict()
	// Add an int entry to exercise that path.
	if err := sd.Add(model.Entry{Name: "bn.num_batches_tracked", DType: model.Int64, Ints: []int64{42}}); err != nil {
		t.Fatal(err)
	}
	var c SparseCodec
	if c.Name() != "sparse" {
		t.Fatal("name")
	}
	buf, st, err := c.Encode(sd)
	if err != nil {
		t.Fatal(err)
	}
	if st.CompressedBytes != int64(len(buf)) {
		t.Fatal("stats size")
	}
	got, err := c.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != sd.Len() {
		t.Fatalf("entries %d != %d", got.Len(), sd.Len())
	}
	gotEntries := got.Entries()
	for i, e := range sd.Entries() {
		g := gotEntries[i]
		if g.Name != e.Name || g.DType != e.DType {
			t.Fatalf("entry %d mismatch", i)
		}
		if e.DType == model.Float32 {
			for j, v := range e.Tensor.Data() {
				if g.Tensor.Data()[j] != v {
					t.Fatalf("%q value %d", e.Name, j)
				}
			}
		} else if g.Ints[0] != e.Ints[0] {
			t.Fatalf("%q int", e.Name)
		}
	}
}

func TestSparseCodecShrinksSparseUpdates(t *testing.T) {
	// After 10% Top-K, the sparse codec should be far smaller than the
	// dense serialization.
	sd := model.NewStateDict()
	data := make([]float32, 10000)
	for i := 0; i < len(data); i += 10 {
		data[i] = float32(i)
	}
	tr, err := tensor.FromData(data, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := sd.Add(model.Entry{Name: "w.weight", DType: model.Float32, Tensor: tr}); err != nil {
		t.Fatal(err)
	}
	var c SparseCodec
	buf, _, err := c.Encode(sd)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) > 10000 { // dense would be 40 KB
		t.Fatalf("sparse codec produced %d bytes for 10%%-dense tensor", len(buf))
	}
	got, err := c.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := got.Get("w.weight")
	for i, v := range data {
		if e.Tensor.Data()[i] != v {
			t.Fatalf("value %d", i)
		}
	}
}

func TestSparseCodecCorrupt(t *testing.T) {
	var c SparseCodec
	if _, err := c.Decode([]byte("nope")); err == nil {
		t.Fatal("expected magic error")
	}
	sd := nn.MobileNetV2Mini(32, 4, 1).StateDict()
	buf, _, err := c.Encode(sd)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decode(buf[:len(buf)/3]); err == nil {
		t.Fatal("expected truncation error")
	}
}
