// Package baseline implements the FL-compression baselines the paper
// surveys in §III-C — Top-K gradient sparsification (Aji & Heafield
// 2017; Lin et al. 2018) and QSGD-style stochastic uniform quantization
// (Alistarh et al. 2017) — as update codecs compatible with the
// federation runtime.
//
// The paper could not compare against these directly ("not
// open-source") and argues instead that FedSZ is a *last step* that
// composes with them (§VIII). This package makes that claim testable:
// both baselines are implemented as standalone codecs, and Stack
// composes any sparsifier/quantizer with the FedSZ pipeline so the
// combination can be measured (the `ablations` bench experiment does).
//
// Deprecated: new code should reach these techniques through the
// compressor-family registry instead — "topk", "randk" and "qsgd" are
// first-class families (package family) selectable per tensor by the
// adaptive control plane and composable with per-client error
// feedback (core.Feedback). This package is kept for the paper's
// §VIII stacked-codec experiments and remains byte-identical to
// previous releases; it gains no new capabilities.
package baseline

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"fedsz/internal/fl"
	"fedsz/internal/model"
	"fedsz/internal/stats"
	"fedsz/internal/tensor"
)

// ErrCorrupt reports a malformed baseline payload.
var ErrCorrupt = errors.New("baseline: corrupt payload")

// Transform rewrites a state dict in place-of transmission: the
// sparsifier/quantizer stage. It must return a dict with identical
// structure.
type Transform interface {
	Name() string
	Apply(sd *model.StateDict) (*model.StateDict, error)
}

// TopK keeps the K largest-magnitude values per weight tensor and
// zeroes the rest — magnitude-based gradient sparsification.
type TopK struct {
	// Fraction of entries kept per tensor, in (0, 1].
	Fraction float64
	// Threshold: tensors with at most this many elements pass through
	// untouched (mirrors the FedSZ partition threshold).
	Threshold int
}

// Name implements Transform.
func (t TopK) Name() string { return fmt.Sprintf("topk-%.2g", t.Fraction) }

// Apply implements Transform.
func (t TopK) Apply(sd *model.StateDict) (*model.StateDict, error) {
	if t.Fraction <= 0 || t.Fraction > 1 {
		return nil, fmt.Errorf("baseline: topk fraction %v out of (0,1]", t.Fraction)
	}
	thr := t.Threshold
	if thr == 0 {
		thr = 1000
	}
	out := model.NewStateDict()
	for _, e := range sd.Entries() {
		cp := e
		if e.DType == model.Float32 && e.IsWeightNamed() && e.NumElements() > thr {
			cp.Tensor = topKTensor(e.Tensor, t.Fraction)
		} else if e.Tensor != nil {
			cp.Tensor = e.Tensor.Clone()
		}
		if err := out.Add(cp); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func topKTensor(t *tensor.Tensor, fraction float64) *tensor.Tensor {
	data := t.Data()
	k := int(math.Ceil(float64(len(data)) * fraction))
	if k >= len(data) {
		return t.Clone()
	}
	mags := make([]float32, len(data))
	for i, v := range data {
		mags[i] = float32(math.Abs(float64(v)))
	}
	sort.Slice(mags, func(i, j int) bool { return mags[i] > mags[j] })
	cut := mags[k-1]
	out := t.Clone()
	od := out.Data()
	kept := 0
	for i, v := range od {
		if float32(math.Abs(float64(v))) >= cut && kept < k {
			kept++
			continue
		}
		od[i] = 0
	}
	return out
}

// QSGD quantizes each weight tensor to 2^Bits+1 uniform levels of its
// per-tensor max magnitude with stochastic (unbiased) rounding.
type QSGD struct {
	// Bits per value (1..16); the paper's survey cites 1-bit signSGD
	// through 8-bit QSGD.
	Bits int
	// Threshold as in TopK.
	Threshold int
	// Seed drives the stochastic rounding.
	Seed int64
}

// Name implements Transform.
func (q QSGD) Name() string { return fmt.Sprintf("qsgd-%db", q.Bits) }

// Apply implements Transform.
func (q QSGD) Apply(sd *model.StateDict) (*model.StateDict, error) {
	if q.Bits < 1 || q.Bits > 16 {
		return nil, fmt.Errorf("baseline: qsgd bits %d out of [1,16]", q.Bits)
	}
	thr := q.Threshold
	if thr == 0 {
		thr = 1000
	}
	rng := stats.NewRNG(q.Seed)
	levels := float64(int(1) << q.Bits)
	out := model.NewStateDict()
	for _, e := range sd.Entries() {
		cp := e
		if e.DType == model.Float32 && e.IsWeightNamed() && e.NumElements() > thr {
			t := e.Tensor.Clone()
			data := t.Data()
			var maxAbs float64
			for _, v := range data {
				if a := math.Abs(float64(v)); a > maxAbs {
					maxAbs = a
				}
			}
			if maxAbs > 0 {
				for i, v := range data {
					x := float64(v) / maxAbs * levels
					lo := math.Floor(x)
					p := x - lo
					if rng.Float64() < p {
						lo++
					}
					data[i] = float32(lo / levels * maxAbs)
				}
			}
			cp.Tensor = t
		} else if e.Tensor != nil {
			cp.Tensor = e.Tensor.Clone()
		}
		if err := out.Add(cp); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Codec wraps a Transform with a wire format: transformed weight
// tensors are encoded sparsely (Top-K) or densely via the inner codec.
// It satisfies fl.Codec so baselines drop into RunSim directly.
type Codec struct {
	transform Transform
	inner     fl.Codec
}

var _ fl.Codec = (*Codec)(nil)

// NewCodec wraps transform over inner (nil inner selects the plain
// serializer). When inner is the FedSZ codec this is the paper's §VIII
// "last-step" composition: sparsify/quantize first, FedSZ after.
func NewCodec(transform Transform, inner fl.Codec) *Codec {
	if inner == nil {
		inner = fl.PlainCodec{}
	}
	return &Codec{transform: transform, inner: inner}
}

// Name implements fl.Codec.
func (c *Codec) Name() string { return c.transform.Name() + "+" + c.inner.Name() }

// Encode implements fl.Codec.
func (c *Codec) Encode(sd *model.StateDict) ([]byte, fl.UpdateStats, error) {
	start := time.Now()
	transformed, err := c.transform.Apply(sd)
	if err != nil {
		return nil, fl.UpdateStats{}, err
	}
	buf, st, err := c.inner.Encode(transformed)
	if err != nil {
		return nil, fl.UpdateStats{}, err
	}
	st.EncodeTime = time.Since(start)
	st.OriginalBytes = sd.SizeBytes()
	return buf, st, nil
}

// Decode implements fl.Codec.
func (c *Codec) Decode(buf []byte) (*model.StateDict, error) {
	return c.inner.Decode(buf)
}

// EncodeTo implements fl.Codec: the transformed dict streams through
// the inner codec's streaming path.
func (c *Codec) EncodeTo(w io.Writer, sd *model.StateDict) (fl.UpdateStats, error) {
	start := time.Now()
	transformed, err := c.transform.Apply(sd)
	if err != nil {
		return fl.UpdateStats{}, err
	}
	st, err := c.inner.EncodeTo(w, transformed)
	if err != nil {
		return fl.UpdateStats{}, err
	}
	st.EncodeTime = time.Since(start)
	st.OriginalBytes = sd.SizeBytes()
	return st, nil
}

// DecodeFrom implements fl.Codec.
func (c *Codec) DecodeFrom(r io.Reader) (*model.StateDict, error) {
	return c.inner.DecodeFrom(r)
}

// SparseCodec serializes updates with run-length-skipped sparse tensor
// payloads — the natural wire format after Top-K sparsification. Dense
// tensors survive too (at a small overhead), so the codec is safe as a
// general inner stage.
type SparseCodec struct{}

var _ fl.Codec = SparseCodec{}

// Name implements fl.Codec.
func (SparseCodec) Name() string { return "sparse" }

// Encode implements fl.Codec.
func (SparseCodec) Encode(sd *model.StateDict) ([]byte, fl.UpdateStats, error) {
	start := time.Now()
	out := []byte("FSP1")
	out = binary.AppendUvarint(out, uint64(sd.Len()))
	for _, e := range sd.Entries() {
		out = binary.AppendUvarint(out, uint64(len(e.Name)))
		out = append(out, e.Name...)
		out = append(out, byte(e.DType))
		switch e.DType {
		case model.Float32:
			shape := e.Tensor.Shape()
			out = binary.AppendUvarint(out, uint64(len(shape)))
			for _, d := range shape {
				out = binary.AppendUvarint(out, uint64(d))
			}
			out = append(out, SparseEncode(e.Tensor.Data())...)
		case model.Int64:
			out = binary.AppendUvarint(out, uint64(len(e.Ints)))
			for _, v := range e.Ints {
				out = binary.LittleEndian.AppendUint64(out, uint64(v))
			}
		default:
			return nil, fl.UpdateStats{}, fmt.Errorf("baseline: dtype %d", e.DType)
		}
	}
	return out, fl.UpdateStats{
		OriginalBytes:   sd.SizeBytes(),
		CompressedBytes: int64(len(out)),
		EncodeTime:      time.Since(start),
	}, nil
}

// EncodeTo implements fl.Codec. The sparse wire format is not
// self-delimiting, so the streaming pair rides the length-prefixed
// buffered adapter.
func (s SparseCodec) EncodeTo(w io.Writer, sd *model.StateDict) (fl.UpdateStats, error) {
	return fl.EncodeToBuffered(s, w, sd)
}

// DecodeFrom implements fl.Codec, reversing EncodeTo.
func (s SparseCodec) DecodeFrom(r io.Reader) (*model.StateDict, error) {
	return fl.DecodeFromBuffered(s, r)
}

// Decode implements fl.Codec.
func (SparseCodec) Decode(buf []byte) (*model.StateDict, error) {
	if len(buf) < 4 || string(buf[:4]) != "FSP1" {
		return nil, fmt.Errorf("%w: sparse magic", ErrCorrupt)
	}
	buf = buf[4:]
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("%w: sparse count", ErrCorrupt)
	}
	buf = buf[n:]
	sd := model.NewStateDict()
	for i := uint64(0); i < count; i++ {
		nameLen, n := binary.Uvarint(buf)
		if n <= 0 || uint64(len(buf)-n) < nameLen+1 {
			return nil, fmt.Errorf("%w: sparse entry %d", ErrCorrupt, i)
		}
		name := string(buf[n : n+int(nameLen)])
		dtype := model.DType(buf[n+int(nameLen)])
		buf = buf[n+int(nameLen)+1:]
		switch dtype {
		case model.Float32:
			ndims, n := binary.Uvarint(buf)
			if n <= 0 || ndims > 16 {
				return nil, fmt.Errorf("%w: %q dims", ErrCorrupt, name)
			}
			buf = buf[n:]
			shape := make([]int, ndims)
			for d := range shape {
				v, n := binary.Uvarint(buf)
				if n <= 0 {
					return nil, fmt.Errorf("%w: %q dim", ErrCorrupt, name)
				}
				shape[d] = int(v)
				buf = buf[n:]
			}
			data, rest, err := sparseDecodeConsume(buf)
			if err != nil {
				return nil, fmt.Errorf("%w: %q: %v", ErrCorrupt, name, err)
			}
			buf = rest
			t, err := tensor.FromData(data, shape...)
			if err != nil {
				return nil, fmt.Errorf("%w: %q: %v", ErrCorrupt, name, err)
			}
			if err := sd.Add(model.Entry{Name: name, DType: model.Float32, Tensor: t}); err != nil {
				return nil, err
			}
		case model.Int64:
			cnt, n := binary.Uvarint(buf)
			if n <= 0 || uint64(len(buf)-n) < cnt*8 {
				return nil, fmt.Errorf("%w: %q ints", ErrCorrupt, name)
			}
			buf = buf[n:]
			ints := make([]int64, cnt)
			for j := range ints {
				ints[j] = int64(binary.LittleEndian.Uint64(buf[j*8:]))
			}
			buf = buf[cnt*8:]
			if err := sd.Add(model.Entry{Name: name, DType: model.Int64, Ints: ints}); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: %q dtype %d", ErrCorrupt, name, dtype)
		}
	}
	return sd, nil
}

// SparseEncode encodes a sparsified tensor as (count, index-delta,
// value) triples — the transport format Top-K implementations use. It
// achieves ≈1/fraction compression on top of sparsification.
func SparseEncode(data []float32) []byte {
	nz := 0
	for _, v := range data {
		if v != 0 {
			nz++
		}
	}
	out := make([]byte, 0, 10+nz*8)
	out = binary.AppendUvarint(out, uint64(len(data)))
	out = binary.AppendUvarint(out, uint64(nz))
	prev := 0
	for i, v := range data {
		if v == 0 {
			continue
		}
		out = binary.AppendUvarint(out, uint64(i-prev))
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(v))
		prev = i
	}
	return out
}

// SparseDecode reverses SparseEncode.
func SparseDecode(buf []byte) ([]float32, error) {
	out, _, err := sparseDecodeConsume(buf)
	return out, err
}

// sparseDecodeConsume decodes one sparse tensor and returns the
// remaining bytes, allowing several tensors to share a buffer.
func sparseDecodeConsume(buf []byte) ([]float32, []byte, error) {
	total, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, nil, fmt.Errorf("%w: total", ErrCorrupt)
	}
	buf = buf[n:]
	nz, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, nil, fmt.Errorf("%w: count", ErrCorrupt)
	}
	buf = buf[n:]
	out := make([]float32, total)
	pos := 0
	for i := uint64(0); i < nz; i++ {
		delta, n := binary.Uvarint(buf)
		if n <= 0 || len(buf) < n+4 {
			return nil, nil, fmt.Errorf("%w: entry %d", ErrCorrupt, i)
		}
		pos += int(delta)
		if pos >= len(out) {
			return nil, nil, fmt.Errorf("%w: index %d out of range", ErrCorrupt, pos)
		}
		out[pos] = math.Float32frombits(binary.LittleEndian.Uint32(buf[n:]))
		buf = buf[n+4:]
	}
	return out, buf, nil
}
