package baseline

import (
	"math"
	"testing"
	"testing/quick"

	"fedsz/internal/core"
	"fedsz/internal/fl"
	"fedsz/internal/lossy"
	"fedsz/internal/model"
	"fedsz/internal/nn"
	"fedsz/internal/stats"
	"fedsz/internal/tensor"
)

func weightDict(t *testing.T, n int, seed int64) *model.StateDict {
	t.Helper()
	rng := stats.NewRNG(seed)
	data := make([]float32, n)
	for i := range data {
		data[i] = float32(rng.NormFloat64())
	}
	tr, err := tensor.FromData(data, n)
	if err != nil {
		t.Fatal(err)
	}
	sd := model.NewStateDict()
	if err := sd.Add(model.Entry{Name: "layer.weight", DType: model.Float32, Tensor: tr}); err != nil {
		t.Fatal(err)
	}
	return sd
}

func TestTopKKeepsLargest(t *testing.T) {
	sd := weightDict(t, 5000, 1)
	out, err := (TopK{Fraction: 0.1}).Apply(sd)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := out.Get("layer.weight")
	orig, _ := sd.Get("layer.weight")
	nz := 0
	var minKept, maxZeroed float32
	minKept = math.MaxFloat32
	for i, v := range e.Tensor.Data() {
		if v != 0 {
			nz++
			if a := abs32(v); a < minKept {
				minKept = a
			}
			if v != orig.Tensor.Data()[i] {
				t.Fatal("kept values must be unmodified")
			}
		} else if a := abs32(orig.Tensor.Data()[i]); a > maxZeroed {
			maxZeroed = a
		}
	}
	want := int(math.Ceil(5000 * 0.1))
	if nz != want {
		t.Fatalf("kept %d values, want %d", nz, want)
	}
	if maxZeroed > minKept {
		t.Fatalf("zeroed a larger value (%v) than a kept one (%v)", maxZeroed, minKept)
	}
}

func TestTopKValidation(t *testing.T) {
	sd := weightDict(t, 100, 1)
	if _, err := (TopK{Fraction: 0}).Apply(sd); err == nil {
		t.Fatal("expected fraction error")
	}
	if _, err := (TopK{Fraction: 1.5}).Apply(sd); err == nil {
		t.Fatal("expected fraction error")
	}
	// Small tensors pass through untouched.
	small := weightDict(t, 50, 2)
	out, err := (TopK{Fraction: 0.1, Threshold: 100}).Apply(small)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := out.Get("layer.weight")
	o, _ := small.Get("layer.weight")
	for i := range e.Tensor.Data() {
		if e.Tensor.Data()[i] != o.Tensor.Data()[i] {
			t.Fatal("under-threshold tensor must pass through")
		}
	}
}

func TestQSGDUnbiasedAndBounded(t *testing.T) {
	sd := weightDict(t, 20000, 3)
	q := QSGD{Bits: 4, Seed: 9}
	out, err := q.Apply(sd)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := out.Get("layer.weight")
	orig, _ := sd.Get("layer.weight")
	var maxAbs float64
	for _, v := range orig.Tensor.Data() {
		if a := math.Abs(float64(v)); a > maxAbs {
			maxAbs = a
		}
	}
	step := maxAbs / 16 // 2^4 levels
	var bias float64
	for i, v := range e.Tensor.Data() {
		diff := float64(v) - float64(orig.Tensor.Data()[i])
		if math.Abs(diff) > step*(1+1e-6) {
			t.Fatalf("quantization error %v exceeds one step %v", diff, step)
		}
		bias += diff
	}
	bias /= float64(e.Tensor.NumElements())
	// Stochastic rounding is unbiased: the mean error is ≪ one step.
	if math.Abs(bias) > step/20 {
		t.Fatalf("bias %v too large for stochastic rounding (step %v)", bias, step)
	}
}

func TestQSGDValidation(t *testing.T) {
	sd := weightDict(t, 100, 1)
	if _, err := (QSGD{Bits: 0}).Apply(sd); err == nil {
		t.Fatal("expected bits error")
	}
	if _, err := (QSGD{Bits: 17}).Apply(sd); err == nil {
		t.Fatal("expected bits error")
	}
}

func TestSparseRoundTrip(t *testing.T) {
	data := []float32{0, 0, 1.5, 0, -2.25, 0, 0, 3, 0}
	buf := SparseEncode(data)
	got, err := SparseDecode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data) {
		t.Fatal("length")
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("value %d: %v != %v", i, got[i], data[i])
		}
	}
	if _, err := SparseDecode([]byte{0xff}); err == nil {
		t.Fatal("expected corrupt error")
	}
}

func TestSparseQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8, density uint8) bool {
		rng := stats.NewRNG(seed)
		data := make([]float32, int(n)+1)
		for i := range data {
			if rng.Intn(256) < int(density) {
				data[i] = float32(rng.NormFloat64())
			}
		}
		got, err := SparseDecode(SparseEncode(data))
		if err != nil || len(got) != len(data) {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestStackedCodecShrinksBeyondEither verifies the paper's §VIII
// last-step claim: Top-K sparsification followed by FedSZ compresses
// better than FedSZ alone.
func TestStackedCodecShrinksBeyondEither(t *testing.T) {
	sd := nn.AlexNetMini(512, 10, 1).StateDict()

	fedszCodec, err := fl.NewFedSZCodec(core.Config{Bound: lossy.RelBound(1e-2)})
	if err != nil {
		t.Fatal(err)
	}
	_, fedszOnly, err := fedszCodec.Encode(sd)
	if err != nil {
		t.Fatal(err)
	}

	stacked := NewCodec(TopK{Fraction: 0.1}, fedszCodec)
	if stacked.Name() != "topk-0.1+fedsz-sz2" {
		t.Fatalf("stacked name %q", stacked.Name())
	}
	buf, stackedStats, err := stacked.Encode(sd)
	if err != nil {
		t.Fatal(err)
	}
	if stackedStats.CompressedBytes >= fedszOnly.CompressedBytes {
		t.Fatalf("stacked (%d) should beat fedsz alone (%d)",
			stackedStats.CompressedBytes, fedszOnly.CompressedBytes)
	}
	// And it still decodes into a structurally identical dict.
	got, err := stacked.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != sd.Len() {
		t.Fatal("structure lost")
	}
}

// TestBaselineCodecTrainsInFederation runs the Top-K baseline end to
// end in the simulation loop.
func TestBaselineCodecTrainsInFederation(t *testing.T) {
	codec := NewCodec(TopK{Fraction: 0.3}, nil)
	res, err := fl.RunSim(fl.SimConfig{
		Clients:          2,
		Rounds:           3,
		SamplesPerClient: 60,
		TestSamples:      100,
		Codec:            codec,
		Seed:             5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy() <= 0.15 {
		t.Fatalf("top-k federation accuracy %.3f did not beat chance", res.FinalAccuracy())
	}
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}
