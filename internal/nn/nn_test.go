package nn

import (
	"math"
	"testing"

	"fedsz/internal/tensor"
)

func TestDenseForwardKnownValues(t *testing.T) {
	d := NewDense("l", 2, 2, 1)
	copy(d.weight.W.Data(), []float32{1, 2, 3, 4}) // W = [[1,2],[3,4]]
	copy(d.bias.W.Data(), []float32{0.5, -0.5})
	x := NewBatch(1, 2)
	copy(x.Data, []float32{1, 1})
	y := d.Forward(x)
	if y.Row(0)[0] != 3.5 || y.Row(0)[1] != 6.5 {
		t.Fatalf("forward = %v", y.Row(0))
	}
}

// TestDenseGradientNumerically verifies backward against a central
// finite difference on a tiny network.
func TestDenseGradientNumerically(t *testing.T) {
	d := NewDense("l", 3, 2, 42)
	x := NewBatch(2, 3)
	copy(x.Data, []float32{0.5, -1, 2, 1, 0.25, -0.75})
	labels := []int{0, 1}

	lossAt := func() float64 {
		y := d.Forward(x)
		loss, _ := SoftmaxCrossEntropy(y, labels)
		return float64(loss)
	}

	// Analytic gradients.
	y := d.Forward(x)
	_, g := SoftmaxCrossEntropy(y, labels)
	d.weight.Grad = tensor.New(2, 3)
	d.bias.Grad = tensor.New(2)
	d.Backward(g)

	const eps = 1e-3
	w := d.weight.W.Data()
	gw := d.weight.Grad.Data()
	for i := range w {
		orig := w[i]
		w[i] = orig + eps
		up := lossAt()
		w[i] = orig - eps
		down := lossAt()
		w[i] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-float64(gw[i])) > 1e-2*math.Max(1, math.Abs(numeric)) {
			t.Fatalf("weight grad %d: analytic %v numeric %v", i, gw[i], numeric)
		}
	}
}

func TestReLU(t *testing.T) {
	r := NewReLU()
	x := NewBatch(1, 4)
	copy(x.Data, []float32{-1, 2, 0, 3})
	y := r.Forward(x)
	want := []float32{0, 2, 0, 3}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("relu forward = %v", y.Data)
		}
	}
	g := NewBatch(1, 4)
	copy(g.Data, []float32{5, 5, 5, 5})
	gi := r.Backward(g)
	wantG := []float32{0, 5, 0, 5}
	for i := range wantG {
		if gi.Data[i] != wantG[i] {
			t.Fatalf("relu backward = %v", gi.Data)
		}
	}
}

func TestSoftmaxCrossEntropyUniform(t *testing.T) {
	logits := NewBatch(1, 4) // all zeros -> uniform
	loss, grad := SoftmaxCrossEntropy(logits, []int{2})
	if math.Abs(float64(loss)-math.Log(4)) > 1e-5 {
		t.Fatalf("loss = %v, want ln4", loss)
	}
	// Gradient sums to zero.
	var sum float32
	for _, g := range grad.Row(0) {
		sum += g
	}
	if math.Abs(float64(sum)) > 1e-6 {
		t.Fatalf("grad sum = %v", sum)
	}
}

func TestMaxPool(t *testing.T) {
	p := NewMaxPool2D(1, 2, 2)
	x := NewBatch(1, 4)
	copy(x.Data, []float32{1, 5, 3, 2})
	y := p.Forward(x)
	if y.Dim != 1 || y.Data[0] != 5 {
		t.Fatalf("pool forward = %v", y.Data)
	}
	g := NewBatch(1, 1)
	g.Data[0] = 7
	gi := p.Backward(g)
	want := []float32{0, 7, 0, 0}
	for i := range want {
		if gi.Data[i] != want[i] {
			t.Fatalf("pool backward = %v", gi.Data)
		}
	}
}

func TestConvGradientNumerically(t *testing.T) {
	c := NewConv2D("c", 1, 2, 3, 4, 4, 7)
	x := NewBatch(1, 16)
	for i := range x.Data {
		x.Data[i] = float32(i%5)*0.3 - 0.5
	}
	labels := []int{3}
	lossAt := func() float64 {
		y := c.Forward(x)
		loss, _ := SoftmaxCrossEntropy(y, labels)
		return float64(loss)
	}
	y := c.Forward(x)
	_, g := SoftmaxCrossEntropy(y, labels)
	c.weight.Grad = tensor.New(2, 1, 3, 3)
	c.bias.Grad = tensor.New(2)
	c.Backward(g)

	const eps = 1e-3
	w := c.weight.W.Data()
	gw := c.weight.Grad.Data()
	for _, i := range []int{0, 4, 8, 9, 13, 17} {
		orig := w[i]
		w[i] = orig + eps
		up := lossAt()
		w[i] = orig - eps
		down := lossAt()
		w[i] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-float64(gw[i])) > 2e-2*math.Max(1, math.Abs(numeric)) {
			t.Fatalf("conv grad %d: analytic %v numeric %v", i, gw[i], numeric)
		}
	}
}

func TestStateDictRoundTrip(t *testing.T) {
	n1 := AlexNetMini(10, 3, 1)
	n2 := AlexNetMini(10, 3, 2) // different init
	sd := n1.StateDict()
	if err := n2.LoadStateDict(sd); err != nil {
		t.Fatal(err)
	}
	p1, p2 := n1.Params(), n2.Params()
	for i := range p1 {
		d1, d2 := p1[i].W.Data(), p2[i].W.Data()
		for j := range d1 {
			if d1[j] != d2[j] {
				t.Fatalf("param %s diverges after load", p1[i].Name)
			}
		}
	}
	if err := n2.LoadStateDict(MobileNetV2Mini(10, 3, 1).StateDict()); err == nil {
		t.Fatal("expected error loading incompatible dict")
	}
}

func TestMiniModelsDistinct(t *testing.T) {
	a := AlexNetMini(100, 10, 1)
	m := MobileNetV2Mini(100, 10, 1)
	r := ResNet50Mini(100, 10, 1)
	if a.NumParams() == m.NumParams() || m.NumParams() == r.NumParams() {
		t.Fatal("mini models should differ in size")
	}
	for _, name := range []string{"alexnet", "mobilenetv2", "resnet50", "unknown"} {
		if MiniByName(name, 10, 2, 1) == nil {
			t.Fatalf("MiniByName(%q) nil", name)
		}
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	// A tiny separable problem must be learnable.
	net := AlexNetMini(4, 2, 3)
	x := NewBatch(8, 4)
	labels := make([]int, 8)
	for i := 0; i < 8; i++ {
		c := i % 2
		labels[i] = c
		for j := 0; j < 4; j++ {
			v := float32(0.2)
			if (j%2 == 0) == (c == 0) {
				v = 1
			}
			x.Row(i)[j] = v
		}
	}
	first := net.TrainBatch(x, labels, 0.1, 0.9)
	var last float32
	for i := 0; i < 60; i++ {
		last = net.TrainBatch(x, labels, 0.1, 0.9)
	}
	if last >= first/2 {
		t.Fatalf("training failed to reduce loss: %v -> %v", first, last)
	}
	if acc := net.Accuracy(x, labels); acc != 1 {
		t.Fatalf("accuracy on memorized set = %v", acc)
	}
}
