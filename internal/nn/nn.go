// Package nn is the trainable neural-network substrate used for the
// paper's accuracy experiments (Table I accuracy columns, Fig. 4, 5, 6).
//
// Go has no PyTorch; training the paper's full-size models is out of
// reach, so the accuracy experiments run on "mini" variants of the
// three architectures (dense networks with matching depth/width ratios)
// trained on synthetic datasets — see DESIGN.md §1 for the substitution
// rationale. What matters for the reproduction is that the *same FedSZ
// pipeline* compresses the updates, with error injected by the real
// compressors.
//
// The package implements batched forward/backward passes for Dense,
// ReLU, Conv2D, MaxPool2D and Flatten layers, softmax cross-entropy
// loss, and SGD with momentum.
package nn

import (
	"fmt"
	"math"

	"fedsz/internal/model"
	"fedsz/internal/stats"
	"fedsz/internal/tensor"
)

// Layer is one differentiable network stage. Forward consumes a batch
// and caches what Backward needs; Backward consumes dL/dout and
// returns dL/din, accumulating parameter gradients internally.
type Layer interface {
	Forward(x *Batch) *Batch
	Backward(grad *Batch) *Batch
	Params() []*Param
}

// Param is a trainable tensor with its gradient and momentum buffer.
type Param struct {
	Name     string
	W        *tensor.Tensor
	Grad     *tensor.Tensor
	velocity []float32
}

// Batch is a batch of activations: Data is row-major [N, Dim...].
type Batch struct {
	N    int
	Dim  int // product of per-sample dims
	Data []float32
}

// NewBatch allocates a batch of n samples with dim features each.
func NewBatch(n, dim int) *Batch {
	return &Batch{N: n, Dim: dim, Data: make([]float32, n*dim)}
}

// Row returns sample i's feature slice.
func (b *Batch) Row(i int) []float32 { return b.Data[i*b.Dim : (i+1)*b.Dim] }

// Network is a sequential feed-forward network.
type Network struct {
	Name   string
	layers []Layer
}

// NewNetwork builds a network from layers.
func NewNetwork(name string, layers ...Layer) *Network {
	return &Network{Name: name, layers: layers}
}

// Forward runs the batch through all layers, returning the logits.
func (n *Network) Forward(x *Batch) *Batch {
	for _, l := range n.layers {
		x = l.Forward(x)
	}
	return x
}

// Params returns all trainable parameters.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.layers {
		out = append(out, l.Params()...)
	}
	return out
}

// NumParams returns the trainable parameter count.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.W.NumElements()
	}
	return total
}

// TrainBatch performs one SGD step on (x, labels) and returns the mean
// cross-entropy loss.
func (n *Network) TrainBatch(x *Batch, labels []int, lr, momentum float32) float32 {
	logits := n.Forward(x)
	loss, grad := SoftmaxCrossEntropy(logits, labels)
	for i := len(n.layers) - 1; i >= 0; i-- {
		grad = n.layers[i].Backward(grad)
	}
	for _, p := range n.Params() {
		p.step(lr, momentum)
	}
	return loss
}

// Predict returns the argmax class per sample.
func (n *Network) Predict(x *Batch) []int {
	logits := n.Forward(x)
	out := make([]int, logits.N)
	for i := 0; i < logits.N; i++ {
		row := logits.Row(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
		_ = best
	}
	return out
}

// Accuracy evaluates top-1 accuracy on (x, labels).
func (n *Network) Accuracy(x *Batch, labels []int) float64 {
	pred := n.Predict(x)
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	if len(labels) == 0 {
		return 0
	}
	return float64(correct) / float64(len(labels))
}

// StateDict exports the parameters as a model.StateDict with
// torch-style names ("layers.0.weight", ...), so the FedSZ partitioner
// treats dense weights as lossy candidates and biases as metadata.
func (n *Network) StateDict() *model.StateDict {
	sd := model.NewStateDict()
	for _, p := range n.Params() {
		if err := sd.Add(model.Entry{Name: p.Name, DType: model.Float32, Tensor: p.W.Clone()}); err != nil {
			panic(err) // parameter names are unique by construction
		}
	}
	return sd
}

// LoadStateDict copies parameter values from sd into the network.
func (n *Network) LoadStateDict(sd *model.StateDict) error {
	for _, p := range n.Params() {
		e, ok := sd.Get(p.Name)
		if !ok {
			return fmt.Errorf("nn: state dict missing %q", p.Name)
		}
		if e.DType != model.Float32 || e.Tensor.NumElements() != p.W.NumElements() {
			return fmt.Errorf("nn: state dict entry %q incompatible", p.Name)
		}
		copy(p.W.Data(), e.Tensor.Data())
	}
	return nil
}

// step applies one SGD-with-momentum update and clears the gradient.
func (p *Param) step(lr, momentum float32) {
	w, g := p.W.Data(), p.Grad.Data()
	if p.velocity == nil {
		p.velocity = make([]float32, len(w))
	}
	for i := range w {
		p.velocity[i] = momentum*p.velocity[i] - lr*g[i]
		w[i] += p.velocity[i]
		g[i] = 0
	}
}

// SoftmaxCrossEntropy returns the mean loss and dL/dlogits for a batch.
func SoftmaxCrossEntropy(logits *Batch, labels []int) (float32, *Batch) {
	grad := NewBatch(logits.N, logits.Dim)
	var loss float64
	for i := 0; i < logits.N; i++ {
		row := logits.Row(i)
		gRow := grad.Row(i)
		maxV := row[0]
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxV))
		}
		logSum := math.Log(sum)
		y := labels[i]
		loss += logSum - float64(row[y]-maxV)
		invN := 1 / float32(logits.N)
		for j := range gRow {
			p := float32(math.Exp(float64(row[j]-maxV)) / sum)
			if j == y {
				p--
			}
			gRow[j] = p * invN
		}
	}
	return float32(loss / float64(logits.N)), grad
}

// initRNG derives a deterministic stream for a named parameter.
func initRNG(seed int64, name string) *randSource {
	h := int64(1469598103934665603)
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	return &randSource{rng: stats.NewRNG(seed ^ h)}
}

type randSource struct {
	rng interface{ NormFloat64() float64 }
}

func (r *randSource) normal(sigma float64) float32 {
	return float32(r.rng.NormFloat64() * sigma)
}
