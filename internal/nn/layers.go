package nn

import (
	"fmt"
	"math"

	"fedsz/internal/tensor"
)

// Dense is a fully connected layer: y = x·Wᵀ + b, W is [out, in].
type Dense struct {
	in, out int
	weight  *Param
	bias    *Param
	lastX   *Batch
}

// NewDense returns a Dense layer with Kaiming-initialized weights. The
// name prefix becomes the state-dict key prefix (e.g. "layers.0").
func NewDense(prefix string, in, out int, seed int64) *Dense {
	d := &Dense{
		in:  in,
		out: out,
		weight: &Param{
			Name: prefix + ".weight",
			W:    tensor.New(out, in),
			Grad: tensor.New(out, in),
		},
		bias: &Param{
			Name: prefix + ".bias",
			W:    tensor.New(out),
			Grad: tensor.New(out),
		},
	}
	rng := initRNG(seed, d.weight.Name)
	sigma := math.Sqrt(2 / float64(in))
	w := d.weight.W.Data()
	for i := range w {
		w[i] = rng.normal(sigma)
	}
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x *Batch) *Batch {
	if x.Dim != d.in {
		panic(fmt.Sprintf("nn: dense %s input dim %d != %d", d.weight.Name, x.Dim, d.in))
	}
	d.lastX = x
	y := NewBatch(x.N, d.out)
	w := d.weight.W.Data()
	b := d.bias.W.Data()
	for i := 0; i < x.N; i++ {
		xr := x.Row(i)
		yr := y.Row(i)
		for o := 0; o < d.out; o++ {
			wRow := w[o*d.in : (o+1)*d.in]
			var acc float32
			for k, xv := range xr {
				acc += xv * wRow[k]
			}
			yr[o] = acc + b[o]
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(grad *Batch) *Batch {
	x := d.lastX
	gw := d.weight.Grad.Data()
	gb := d.bias.Grad.Data()
	w := d.weight.W.Data()
	out := NewBatch(x.N, d.in)
	for i := 0; i < x.N; i++ {
		xr := x.Row(i)
		gr := grad.Row(i)
		or := out.Row(i)
		for o := 0; o < d.out; o++ {
			g := gr[o]
			if g == 0 {
				continue
			}
			gb[o] += g
			wRow := w[o*d.in : (o+1)*d.in]
			gwRow := gw[o*d.in : (o+1)*d.in]
			for k, xv := range xr {
				gwRow[k] += g * xv
				or[k] += g * wRow[k]
			}
		}
	}
	return out
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.weight, d.bias} }

// ReLU is an elementwise rectifier.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *Batch) *Batch {
	y := NewBatch(x.N, x.Dim)
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *Batch) *Batch {
	out := NewBatch(grad.N, grad.Dim)
	for i, g := range grad.Data {
		if r.mask[i] {
			out.Data[i] = g
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Conv2D is a stride-1 same-channel 2-D convolution over [C,H,W]
// samples with zero padding, weight [out, in, k, k].
type Conv2D struct {
	inC, outC, k, h, w int
	weight             *Param
	bias               *Param
	lastX              *Batch
}

// NewConv2D returns a Conv2D for inC×h×w inputs with outC k×k filters
// (zero padding keeps spatial dims).
func NewConv2D(prefix string, inC, outC, k, h, w int, seed int64) *Conv2D {
	c := &Conv2D{
		inC: inC, outC: outC, k: k, h: h, w: w,
		weight: &Param{
			Name: prefix + ".weight",
			W:    tensor.New(outC, inC, k, k),
			Grad: tensor.New(outC, inC, k, k),
		},
		bias: &Param{
			Name: prefix + ".bias",
			W:    tensor.New(outC),
			Grad: tensor.New(outC),
		},
	}
	rng := initRNG(seed, c.weight.Name)
	sigma := math.Sqrt(2 / float64(inC*k*k))
	wd := c.weight.W.Data()
	for i := range wd {
		wd[i] = rng.normal(sigma)
	}
	return c
}

// OutDim returns the flattened output dimension.
func (c *Conv2D) OutDim() int { return c.outC * c.h * c.w }

// Forward implements Layer.
func (c *Conv2D) Forward(x *Batch) *Batch {
	if x.Dim != c.inC*c.h*c.w {
		panic(fmt.Sprintf("nn: conv %s input dim %d != %d", c.weight.Name, x.Dim, c.inC*c.h*c.w))
	}
	c.lastX = x
	y := NewBatch(x.N, c.OutDim())
	w := c.weight.W.Data()
	b := c.bias.W.Data()
	pad := c.k / 2
	for n := 0; n < x.N; n++ {
		xr := x.Row(n)
		yr := y.Row(n)
		for oc := 0; oc < c.outC; oc++ {
			for oy := 0; oy < c.h; oy++ {
				for ox := 0; ox < c.w; ox++ {
					acc := b[oc]
					for ic := 0; ic < c.inC; ic++ {
						for ky := 0; ky < c.k; ky++ {
							iy := oy + ky - pad
							if iy < 0 || iy >= c.h {
								continue
							}
							for kx := 0; kx < c.k; kx++ {
								ix := ox + kx - pad
								if ix < 0 || ix >= c.w {
									continue
								}
								acc += xr[(ic*c.h+iy)*c.w+ix] *
									w[((oc*c.inC+ic)*c.k+ky)*c.k+kx]
							}
						}
					}
					yr[(oc*c.h+oy)*c.w+ox] = acc
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *Batch) *Batch {
	x := c.lastX
	w := c.weight.W.Data()
	gw := c.weight.Grad.Data()
	gb := c.bias.Grad.Data()
	out := NewBatch(x.N, x.Dim)
	pad := c.k / 2
	for n := 0; n < x.N; n++ {
		xr := x.Row(n)
		gr := grad.Row(n)
		or := out.Row(n)
		for oc := 0; oc < c.outC; oc++ {
			for oy := 0; oy < c.h; oy++ {
				for ox := 0; ox < c.w; ox++ {
					g := gr[(oc*c.h+oy)*c.w+ox]
					if g == 0 {
						continue
					}
					gb[oc] += g
					for ic := 0; ic < c.inC; ic++ {
						for ky := 0; ky < c.k; ky++ {
							iy := oy + ky - pad
							if iy < 0 || iy >= c.h {
								continue
							}
							for kx := 0; kx < c.k; kx++ {
								ix := ox + kx - pad
								if ix < 0 || ix >= c.w {
									continue
								}
								wi := ((oc*c.inC+ic)*c.k+ky)*c.k + kx
								xi := (ic*c.h+iy)*c.w + ix
								gw[wi] += g * xr[xi]
								or[xi] += g * w[wi]
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.weight, c.bias} }

// MaxPool2D is a 2×2 stride-2 max pool over [C,H,W] samples.
type MaxPool2D struct {
	c, h, w int
	argmax  []int32
}

// NewMaxPool2D returns a pool layer for c×h×w inputs (h, w even).
func NewMaxPool2D(c, h, w int) *MaxPool2D {
	return &MaxPool2D{c: c, h: h, w: w}
}

// OutDim returns the flattened output dimension.
func (p *MaxPool2D) OutDim() int { return p.c * (p.h / 2) * (p.w / 2) }

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *Batch) *Batch {
	oh, ow := p.h/2, p.w/2
	y := NewBatch(x.N, p.OutDim())
	if cap(p.argmax) < x.N*p.OutDim() {
		p.argmax = make([]int32, x.N*p.OutDim())
	}
	p.argmax = p.argmax[:x.N*p.OutDim()]
	for n := 0; n < x.N; n++ {
		xr := x.Row(n)
		yr := y.Row(n)
		for c := 0; c < p.c; c++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := float32(math.Inf(-1))
					bestIdx := 0
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							idx := (c*p.h+oy*2+dy)*p.w + ox*2 + dx
							if xr[idx] > best {
								best = xr[idx]
								bestIdx = idx
							}
						}
					}
					oIdx := (c*oh+oy)*ow + ox
					yr[oIdx] = best
					p.argmax[n*p.OutDim()+oIdx] = int32(bestIdx)
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(grad *Batch) *Batch {
	out := NewBatch(grad.N, p.c*p.h*p.w)
	for n := 0; n < grad.N; n++ {
		gr := grad.Row(n)
		or := out.Row(n)
		for i, g := range gr {
			or[p.argmax[n*p.OutDim()+i]] += g
		}
	}
	return out
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*Param { return nil }
