package nn

// Mini architectures: dense networks whose depth/width ratios echo the
// three paper models. They exist so the accuracy experiments (Table I
// accuracy, Fig. 4/5/6) can train in seconds in pure Go while exercising
// the identical FedSZ compression path. Layer names follow the
// "<name>.weight"/"<name>.bias" convention so the partitioner routes
// hidden-layer weights through the lossy path.

// AlexNetMini returns a 3-layer dense network (wide middle — AlexNet's
// FC-heavy profile).
func AlexNetMini(inputDim, classes int, seed int64) *Network {
	h1, h2 := 256, 128
	return NewNetwork("alexnet-mini",
		NewDense("features.0", inputDim, h1, seed),
		NewReLU(),
		NewDense("classifier.1", h1, h2, seed),
		NewReLU(),
		NewDense("classifier.6", h2, classes, seed),
	)
}

// MobileNetV2Mini returns a narrow, deeper network (MobileNet's
// thin-tower profile).
func MobileNetV2Mini(inputDim, classes int, seed int64) *Network {
	h := 64
	return NewNetwork("mobilenetv2-mini",
		NewDense("features.0", inputDim, h, seed),
		NewReLU(),
		NewDense("features.4", h, h, seed),
		NewReLU(),
		NewDense("features.8", h, h, seed),
		NewReLU(),
		NewDense("classifier.1", h, classes, seed),
	)
}

// ResNet50Mini returns a medium-width 4-layer network (ResNet's
// mid-size profile).
func ResNet50Mini(inputDim, classes int, seed int64) *Network {
	h1, h2 := 128, 128
	return NewNetwork("resnet50-mini",
		NewDense("layer1.0", inputDim, h1, seed),
		NewReLU(),
		NewDense("layer2.0", h1, h2, seed),
		NewReLU(),
		NewDense("layer3.0", h2, h2, seed),
		NewReLU(),
		NewDense("fc", h2, classes, seed),
	)
}

// ConvNetMini returns a small convolutional network for c×h×w image
// inputs — used by the convolutional example to exercise Conv2D and
// MaxPool2D end to end.
func ConvNetMini(c, h, w, classes int, seed int64) *Network {
	conv1 := NewConv2D("features.0", c, 8, 3, h, w, seed)
	pool1 := NewMaxPool2D(8, h, w)
	conv2 := NewConv2D("features.3", 8, 16, 3, h/2, w/2, seed)
	pool2 := NewMaxPool2D(16, h/2, w/2)
	return NewNetwork("convnet-mini",
		conv1,
		NewReLU(),
		pool1,
		conv2,
		NewReLU(),
		pool2,
		NewDense("classifier.1", 16*(h/4)*(w/4), classes, seed),
	)
}

// MiniByName builds a mini model matching a paper model name
// ("alexnet", "mobilenetv2", "resnet50").
func MiniByName(name string, inputDim, classes int, seed int64) *Network {
	switch name {
	case "mobilenetv2":
		return MobileNetV2Mini(inputDim, classes, seed)
	case "resnet50":
		return ResNet50Mini(inputDim, classes, seed)
	default:
		return AlexNetMini(inputDim, classes, seed)
	}
}
