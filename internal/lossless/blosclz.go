package lossless

import (
	"encoding/binary"
	"fmt"
)

// BloscLZ reproduces the two-stage design of c-blosc's blosclz codec: a
// byte-shuffle filter that transposes the bytes of fixed-size elements
// (grouping all exponent bytes of float32 data together, which is what
// makes blosc effective on floating-point arrays) followed by a
// FastLZ-style greedy LZ pass.
type BloscLZ struct {
	elemSize int
}

// NewBloscLZ returns a BloscLZ codec with the given shuffle element
// size (4 for float32 payloads; 1 disables shuffling).
func NewBloscLZ(elemSize int) *BloscLZ {
	if elemSize < 1 {
		elemSize = 1
	}
	return &BloscLZ{elemSize: elemSize}
}

// Name implements Codec.
func (c *BloscLZ) Name() string { return NameBloscLZ }

// Compress implements Codec.
func (c *BloscLZ) Compress(src []byte) ([]byte, error) {
	return c.AppendCompress(make([]byte, 0, len(src)/2+16), src)
}

// AppendCompress implements Codec.
func (c *BloscLZ) AppendCompress(dst, src []byte) ([]byte, error) {
	elem := c.elemSize
	if len(src)%elem != 0 || len(src) < 2*elem {
		elem = 1 // shuffle needs whole elements
	}
	shuffled := shuffle(src, elem)
	out := dst
	out = binary.AppendUvarint(out, uint64(len(src)))
	out = append(out, byte(elem))
	out = lzCompress(out, shuffled, lzParams{
		window:   1 << 16,
		hashBits: 14,
		maxDist:  1 << 16,
		dist3:    false,
		depth:    1,
		lazy:     false,
		// Cap the skip stride: after shuffling, a long incompressible
		// mantissa plane precedes the compressible exponent plane, and
		// an unbounded stride would leap over it.
		accelCap: 15,
	})
	return out, nil
}

// Decompress implements Codec.
func (c *BloscLZ) Decompress(src []byte) ([]byte, error) {
	origLen, n := binary.Uvarint(src)
	if n <= 0 || len(src) < n+1 {
		return nil, fmt.Errorf("%w: blosclz header", ErrCorrupt)
	}
	elem := int(src[n])
	if elem < 1 {
		return nil, fmt.Errorf("%w: blosclz element size", ErrCorrupt)
	}
	shuffled, err := lzDecompress(nil, src[n+1:], int(origLen), false)
	if err != nil {
		return nil, err
	}
	return unshuffle(shuffled, elem), nil
}

// shuffle transposes src (viewed as elements of elemSize bytes) so that
// byte k of every element is contiguous.
func shuffle(src []byte, elemSize int) []byte {
	if elemSize <= 1 || len(src)%elemSize != 0 {
		return src
	}
	n := len(src) / elemSize
	out := make([]byte, len(src))
	for k := 0; k < elemSize; k++ {
		base := k * n
		for i := 0; i < n; i++ {
			out[base+i] = src[i*elemSize+k]
		}
	}
	return out
}

// unshuffle reverses shuffle.
func unshuffle(src []byte, elemSize int) []byte {
	if elemSize <= 1 || len(src)%elemSize != 0 {
		return src
	}
	n := len(src) / elemSize
	out := make([]byte, len(src))
	for k := 0; k < elemSize; k++ {
		base := k * n
		for i := 0; i < n; i++ {
			out[i*elemSize+k] = src[base+i]
		}
	}
	return out
}
