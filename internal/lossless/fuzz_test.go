package lossless

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzLZHDecompress drives the LZH (zstd-like profile) decoder with
// arbitrary bytes (CI runs it for 10s per PR): it must never panic or
// over-allocate, streams it accepts must round-trip through Compress,
// and the append variant must agree with the plain one.
func FuzzLZHDecompress(f *testing.F) {
	c := NewLZH(ProfileZstd)
	rng := rand.New(rand.NewSource(21))
	compressible := bytes.Repeat([]byte("abcabcabd0123"), 200)
	random := make([]byte, 1500)
	rng.Read(random)
	for _, src := range [][]byte{compressible, random, []byte("x"), nil} {
		enc, err := c.Compress(src)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	enc, _ := c.Compress(compressible)
	trunc := append([]byte(nil), enc[:len(enc)/2]...)
	f.Add(trunc)
	mangled := append([]byte(nil), enc...)
	mangled[len(mangled)/2] ^= 0x40
	f.Add(mangled)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // bound per-exec work; structure, not size, is under test
		}
		out, err := c.Decompress(data)
		appended, appErr := c.AppendDecompress([]byte{0xEE}, data)
		if (err == nil) != (appErr == nil) {
			t.Fatalf("Decompress err %v, AppendDecompress err %v", err, appErr)
		}
		if err != nil {
			return
		}
		if len(appended) != 1+len(out) || appended[0] != 0xEE || !bytes.Equal(appended[1:], out) {
			t.Fatal("AppendDecompress disagrees with Decompress")
		}
		re, err := c.Compress(out)
		if err != nil {
			t.Fatalf("re-compress of decoded output failed: %v", err)
		}
		back, err := c.Decompress(re)
		if err != nil {
			t.Fatalf("round trip decode failed: %v", err)
		}
		if !bytes.Equal(back, out) {
			t.Fatal("round trip diverged")
		}
	})
}
