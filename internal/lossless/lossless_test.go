package lossless

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func allCodecs(t *testing.T) []Codec {
	t.Helper()
	var out []Codec
	for _, name := range Names() {
		c, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Fatalf("codec %q reports name %q", name, c.Name())
		}
		out = append(out, c)
	}
	return out
}

// corpora returns test inputs with different statistics.
func corpora() map[string][]byte {
	rng := rand.New(rand.NewSource(42))

	repetitive := bytes.Repeat([]byte("federated learning with lossy compression "), 500)

	random := make([]byte, 32*1024)
	rng.Read(random)

	// Float32 data with clustered exponents — the shape of FL metadata.
	floats := make([]byte, 0, 16*1024)
	for i := 0; i < 4*1024; i++ {
		v := float32(rng.NormFloat64() * 0.05)
		floats = binary.LittleEndian.AppendUint32(floats, math.Float32bits(v))
	}

	return map[string][]byte{
		"empty":      {},
		"tiny":       []byte("ab"),
		"repetitive": repetitive,
		"random":     random,
		"floats":     floats,
		"zeros":      make([]byte, 8192),
	}
}

func TestRoundTripAllCodecs(t *testing.T) {
	for _, c := range allCodecs(t) {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			for name, data := range corpora() {
				comp, err := c.Compress(data)
				if err != nil {
					t.Fatalf("%s compress %s: %v", c.Name(), name, err)
				}
				got, err := c.Decompress(comp)
				if err != nil {
					t.Fatalf("%s decompress %s: %v", c.Name(), name, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("%s round trip mismatch on %s: got %d bytes want %d",
						c.Name(), name, len(got), len(data))
				}
			}
		})
	}
}

func TestCompressesRepetitiveData(t *testing.T) {
	data := corpora()["repetitive"]
	for _, c := range allCodecs(t) {
		comp, err := c.Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(comp) >= len(data)/4 {
			t.Errorf("%s: ratio %.2f too low on repetitive data",
				c.Name(), float64(len(data))/float64(len(comp)))
		}
	}
}

func TestBloscShuffleHelpsFloats(t *testing.T) {
	// The byte-shuffle filter is what makes blosc effective on float
	// arrays: shuffled compression must beat unshuffled on float data.
	data := corpora()["floats"]
	shuffled := NewBloscLZ(4)
	plain := NewBloscLZ(1)
	cs, err := shuffled.Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := plain.Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) >= len(cp) {
		t.Fatalf("shuffle did not help: shuffled=%d plain=%d", len(cs), len(cp))
	}
}

func TestShuffleRoundTrip(t *testing.T) {
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	s := shuffle(data, 4)
	want := []byte{1, 5, 9, 2, 6, 10, 3, 7, 11, 4, 8, 12}
	if !bytes.Equal(s, want) {
		t.Fatalf("shuffle = %v, want %v", s, want)
	}
	if got := unshuffle(s, 4); !bytes.Equal(got, data) {
		t.Fatalf("unshuffle = %v", got)
	}
	// Non-multiple lengths pass through unchanged.
	odd := []byte{1, 2, 3}
	if !bytes.Equal(shuffle(odd, 4), odd) {
		t.Fatal("shuffle should pass through non-multiple input")
	}
}

func TestXzBeatsOrMatchesZstdOnRatio(t *testing.T) {
	data := bytes.Repeat(corpora()["floats"], 4)
	z, _ := New(NameZstdLike)
	x, _ := New(NameXzLike)
	cz, err := z.Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	cx, err := x.Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(cx) > len(cz)+len(cz)/20 {
		t.Fatalf("xzlike (%d) should not be materially worse than zstdlike (%d)", len(cx), len(cz))
	}
}

func TestUnknownCodec(t *testing.T) {
	if _, err := New("nope"); err == nil {
		t.Fatal("expected error for unknown codec")
	}
}

func TestCorruptInputs(t *testing.T) {
	for _, c := range allCodecs(t) {
		if _, err := c.Decompress([]byte{0xff, 0xfe, 0xfd}); err == nil {
			t.Errorf("%s: expected error on garbage input", c.Name())
		}
	}
}

func TestLZTokenStreamCorruption(t *testing.T) {
	// Match distance pointing before the start of output must error.
	stream := []byte{0x80, 0x10, 0x00} // match len 4 dist 17 at position 0
	if _, err := lzDecompress(nil, stream, 4, false); err == nil {
		t.Fatal("expected error for out-of-range distance")
	}
	// Truncated literal run.
	if _, err := lzDecompress(nil, []byte{0x05, 'a'}, 6, false); err == nil {
		t.Fatal("expected error for truncated literals")
	}
	// Wrong declared length.
	if _, err := lzDecompress(nil, []byte{0x00, 'a'}, 2, false); err == nil {
		t.Fatal("expected error for length mismatch")
	}
}

func TestQuickRoundTripBloscAndLZH(t *testing.T) {
	blosc, _ := New(NameBloscLZ)
	zstd, _ := New(NameZstdLike)
	f := func(seed int64, size uint16, runBias uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size) % 4096
		data := make([]byte, n)
		// Mix random bytes with runs to exercise both token paths.
		i := 0
		for i < n {
			if rng.Intn(256) < int(runBias) {
				run := rng.Intn(64) + 4
				b := byte(rng.Intn(4))
				for j := 0; j < run && i < n; j++ {
					data[i] = b
					i++
				}
			} else {
				data[i] = byte(rng.Intn(256))
				i++
			}
		}
		for _, c := range []Codec{blosc, zstd} {
			comp, err := c.Compress(data)
			if err != nil {
				return false
			}
			got, err := c.Decompress(comp)
			if err != nil || !bytes.Equal(got, data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCodecs(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, 0, 1<<20)
	for i := 0; i < 1<<18; i++ {
		v := float32(rng.NormFloat64() * 0.05)
		data = binary.LittleEndian.AppendUint32(data, math.Float32bits(v))
	}
	for _, name := range Names() {
		c, err := New(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := c.Compress(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
