package lossless

import (
	"encoding/binary"
	"fmt"
	"sync"

	"fedsz/internal/huffman"
)

// LZHProfile selects the effort/window trade-off of the LZH codec.
type LZHProfile int

const (
	// ProfileZstd approximates zstd's default profile: a large window
	// with moderate-depth lazy matching and an entropy stage.
	ProfileZstd LZHProfile = iota + 1
	// ProfileXz approximates xz's profile: a very large window with a
	// deep (slow) match search — best ratio, worst runtime, mirroring
	// xz's Table II position.
	ProfileXz
)

// tokenPool recycles the LZ token scratch shared by the LZH encode and
// decode paths — one byte-ish per input byte, the stage's largest
// transient buffer.
var tokenPool = sync.Pool{
	New: func() interface{} { return new([]byte) },
}

// LZH is an LZ77 + canonical-Huffman codec. Two profiles stand in for
// zstd and xz (see DESIGN.md §1 for the substitution rationale).
type LZH struct {
	profile LZHProfile
	params  lzParams
}

// NewLZH returns an LZH codec with the given profile.
func NewLZH(profile LZHProfile) *LZH {
	p := lzParams{maxDist: 1 << 24, dist3: true, hashBits: 16, lazy: true}
	switch profile {
	case ProfileXz:
		p.window = 1 << 23
		p.depth = 128
		p.noAccel = true
	default:
		p.window = 1 << 20
		p.depth = 16
	}
	return &LZH{profile: profile, params: p}
}

// Name implements Codec.
func (c *LZH) Name() string {
	if c.profile == ProfileXz {
		return NameXzLike
	}
	return NameZstdLike
}

// Compress implements Codec.
func (c *LZH) Compress(src []byte) ([]byte, error) {
	return c.AppendCompress(make([]byte, 0, len(src)/2+16), src)
}

// AppendCompress implements Codec. The LZ token stream goes straight
// from pooled scratch into the Huffman append encoder, so the only
// buffer growing is dst itself.
func (c *LZH) AppendCompress(dst, src []byte) ([]byte, error) {
	sc := tokenPool.Get().(*[]byte)
	tokens := lzCompress((*sc)[:0], src, c.params)
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	dst = huffman.AppendEncodeBytes(dst, tokens)
	*sc = tokens[:0]
	tokenPool.Put(sc)
	return dst, nil
}

// Decompress implements Codec.
func (c *LZH) Decompress(src []byte) ([]byte, error) {
	return c.AppendDecompress(nil, src)
}

// AppendDecompress implements AppendDecompressor: the entropy stage
// streams tokens into pooled scratch and the LZ expansion appends
// directly to dst, so the call allocates nothing beyond dst's growth.
func (c *LZH) AppendDecompress(dst, src []byte) ([]byte, error) {
	origLen, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, fmt.Errorf("%w: %s header", ErrCorrupt, c.Name())
	}
	d := huffman.AcquireDecoder()
	defer d.Release()
	if err := d.Open(src[n:]); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, c.Name(), err)
	}
	sc := tokenPool.Get().(*[]byte)
	defer func() {
		tokenPool.Put(sc)
	}()
	tokens, err := d.DecodeAllBytes((*sc)[:0])
	*sc = tokens[:0]
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, c.Name(), err)
	}
	return lzDecompress(dst, tokens, int(origLen), c.params.dist3)
}
