package lossless

import (
	"encoding/binary"
	"fmt"

	"fedsz/internal/huffman"
)

// LZHProfile selects the effort/window trade-off of the LZH codec.
type LZHProfile int

const (
	// ProfileZstd approximates zstd's default profile: a large window
	// with moderate-depth lazy matching and an entropy stage.
	ProfileZstd LZHProfile = iota + 1
	// ProfileXz approximates xz's profile: a very large window with a
	// deep (slow) match search — best ratio, worst runtime, mirroring
	// xz's Table II position.
	ProfileXz
)

// LZH is an LZ77 + canonical-Huffman codec. Two profiles stand in for
// zstd and xz (see DESIGN.md §1 for the substitution rationale).
type LZH struct {
	profile LZHProfile
	params  lzParams
}

// NewLZH returns an LZH codec with the given profile.
func NewLZH(profile LZHProfile) *LZH {
	p := lzParams{maxDist: 1 << 24, dist3: true, hashBits: 16, lazy: true}
	switch profile {
	case ProfileXz:
		p.window = 1 << 23
		p.depth = 128
		p.noAccel = true
	default:
		p.window = 1 << 20
		p.depth = 16
	}
	return &LZH{profile: profile, params: p}
}

// Name implements Codec.
func (c *LZH) Name() string {
	if c.profile == ProfileXz {
		return NameXzLike
	}
	return NameZstdLike
}

// Compress implements Codec.
func (c *LZH) Compress(src []byte) ([]byte, error) {
	tokens := lzCompress(nil, src, c.params)
	syms := make([]int, len(tokens))
	for i, b := range tokens {
		syms[i] = int(b)
	}
	enc, err := huffman.Encode(syms)
	if err != nil {
		return nil, fmt.Errorf("lossless: %s entropy stage: %w", c.Name(), err)
	}
	out := make([]byte, 0, len(enc)+10)
	out = binary.AppendUvarint(out, uint64(len(src)))
	out = append(out, enc...)
	return out, nil
}

// Decompress implements Codec.
func (c *LZH) Decompress(src []byte) ([]byte, error) {
	origLen, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, fmt.Errorf("%w: %s header", ErrCorrupt, c.Name())
	}
	syms, err := huffman.Decode(src[n:])
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, c.Name(), err)
	}
	tokens := make([]byte, len(syms))
	for i, s := range syms {
		if s < 0 || s > 255 {
			return nil, fmt.Errorf("%w: %s token %d", ErrCorrupt, c.Name(), s)
		}
		tokens[i] = byte(s)
	}
	return lzDecompress(tokens, int(origLen), c.params.dist3)
}
