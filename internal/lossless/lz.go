package lossless

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// lzMinMatch is the minimum match length encoded by the LZ token
// stream shared by blosclz and the LZH codecs.
const lzMinMatch = 4

// lzParams tunes the LZ match finder.
type lzParams struct {
	window   int  // maximum match distance
	hashBits uint // hash table size = 1<<hashBits
	maxDist  int  // hard cap implied by the distance encoding
	dist3    bool // 3-byte distances (large windows) vs 2-byte
	depth    int  // hash-chain search depth (1 = single probe)
	lazy     bool // one-step-lazy matching
	noAccel  bool // disable LZ4-style skip acceleration (exhaustive scan)
	accelCap int  // max skip stride (0 = unbounded)
}

// lzScratch holds the match-finder tables, recycled across calls: the
// head table alone is 256 KiB at the LZH profiles' 16 hash bits, paid
// once per tensor per round on the FedSZ hot path.
type lzScratch struct {
	head  []int32
	chain []int32
}

var lzScratchPool = sync.Pool{
	New: func() interface{} { return new(lzScratch) },
}

// lzCompress appends the token stream for src to dst.
//
// Token format:
//
//	0x00..0x7F            literal run of (ctrl+1) bytes
//	0x80|L, [uvarint], D  match of length lzMinMatch+L (L==0x7F adds the
//	                      uvarint extension), distance D+1 as 2- or
//	                      3-byte little-endian
func lzCompress(dst, src []byte, p lzParams) []byte {
	n := len(src)
	if n < lzMinMatch {
		return appendLiterals(dst, src)
	}
	if p.window > p.maxDist {
		p.window = p.maxDist
	}
	sc := lzScratchPool.Get().(*lzScratch)
	defer lzScratchPool.Put(sc)
	if size := 1 << p.hashBits; cap(sc.head) < size {
		sc.head = make([]int32, size)
	}
	head := sc.head[:1<<p.hashBits]
	for i := range head {
		head[i] = -1
	}
	var chain []int32
	if p.depth > 1 {
		// Stale entries from a previous run are unreachable: find only
		// follows chain links from positions inserted this call, and
		// insert writes chain[i] before publishing i via head.
		if cap(sc.chain) < n {
			sc.chain = make([]int32, n)
		}
		chain = sc.chain[:n]
	}
	lastInserted := -1
	insert := func(i int) {
		if i <= lastInserted {
			return
		}
		lastInserted = i
		h := lzHash(src[i:], p.hashBits)
		if chain != nil {
			chain[i] = head[h]
		}
		head[h] = int32(i)
	}
	find := func(i int) (mlen, dist int) {
		limit := n
		cand := int(head[lzHash(src[i:], p.hashBits)])
		for probes := 0; cand >= 0 && probes < p.depth; probes++ {
			d := i - cand
			if d > p.window || d <= 0 {
				break
			}
			l := matchLen(src, cand, i, limit)
			if l > mlen {
				mlen, dist = l, d
			}
			if chain == nil {
				break
			}
			cand = int(chain[cand])
		}
		if mlen < lzMinMatch {
			return 0, 0
		}
		return mlen, dist
	}

	litStart := 0
	i := 0
	misses := 0 // consecutive failed probes drive LZ4-style skip acceleration
	for i+lzMinMatch <= n {
		mlen, dist := find(i)
		if mlen == 0 {
			insert(i)
			i++
			if !p.noAccel {
				// LZ4-style acceleration, capped so a long incompressible
				// region cannot make the scanner leap over a compressible
				// one (e.g. the exponent plane after a byte shuffle).
				step := misses >> 6
				if p.accelCap > 0 && step > p.accelCap {
					step = p.accelCap
				}
				i += step
				misses++
			}
			continue
		}
		misses = 0
		if p.lazy && i+1+lzMinMatch <= n {
			insert(i)
			if mlen2, dist2 := find(i + 1); mlen2 > mlen+1 {
				i++
				mlen, dist = mlen2, dist2
			}
		}
		dst = appendLiterals(dst, src[litStart:i])
		dst = appendMatch(dst, mlen, dist, p.dist3)
		matchEnd := i + mlen
		// Index the positions covered by the match so later data can
		// reference into it (insert deduplicates).
		insertEnd := matchEnd
		if insertEnd > n-lzMinMatch+1 {
			insertEnd = n - lzMinMatch + 1
		}
		for j := i; j < insertEnd; j++ {
			insert(j)
		}
		i = matchEnd
		litStart = i
	}
	dst = appendLiterals(dst, src[litStart:])
	return dst
}

func appendLiterals(dst, lits []byte) []byte {
	for len(lits) > 0 {
		run := len(lits)
		if run > 128 {
			run = 128
		}
		dst = append(dst, byte(run-1))
		dst = append(dst, lits[:run]...)
		lits = lits[run:]
	}
	return dst
}

func appendMatch(dst []byte, mlen, dist int, dist3 bool) []byte {
	l := mlen - lzMinMatch
	if l < 0x7F {
		dst = append(dst, 0x80|byte(l))
	} else {
		dst = append(dst, 0xFF)
		dst = binary.AppendUvarint(dst, uint64(l-0x7F))
	}
	d := dist - 1
	dst = append(dst, byte(d), byte(d>>8))
	if dist3 {
		dst = append(dst, byte(d>>16))
	}
	return dst
}

// lzDecompress appends the decoding of a token stream — exactly
// origLen bytes — to dst (which may be nil). Matches may only
// reference bytes produced by this call, never dst's existing prefix.
func lzDecompress(dst, src []byte, origLen int, dist3 bool) ([]byte, error) {
	if origLen < 0 {
		return nil, fmt.Errorf("%w: negative length", ErrCorrupt)
	}
	// origLen comes from an untrusted header: cap the preallocation and
	// let append grow toward genuinely large outputs instead of letting
	// a hostile length drive an OOM up front.
	if dst == nil {
		capHint := origLen
		if capHint > 1<<20 {
			capHint = 1 << 20
		}
		dst = make([]byte, 0, capHint)
	}
	out := dst
	base := len(out)
	pos := 0
	for pos < len(src) {
		ctrl := src[pos]
		pos++
		if ctrl < 0x80 {
			run := int(ctrl) + 1
			if pos+run > len(src) {
				return nil, fmt.Errorf("%w: literal run overruns input", ErrCorrupt)
			}
			out = append(out, src[pos:pos+run]...)
			pos += run
			continue
		}
		l := int(ctrl & 0x7F)
		mlen := lzMinMatch + l
		if l == 0x7F {
			extra, n := binary.Uvarint(src[pos:])
			if n <= 0 {
				return nil, fmt.Errorf("%w: match length extension", ErrCorrupt)
			}
			mlen += int(extra)
			pos += n
		}
		// A match can never produce more bytes than the declared output
		// has left; a hostile extension would otherwise copy unbounded.
		if mlen < 0 || mlen > origLen-(len(out)-base) {
			return nil, fmt.Errorf("%w: match length %d overruns output", ErrCorrupt, mlen)
		}
		dBytes := 2
		if dist3 {
			dBytes = 3
		}
		if pos+dBytes > len(src) {
			return nil, fmt.Errorf("%w: match distance overruns input", ErrCorrupt)
		}
		dist := int(src[pos]) | int(src[pos+1])<<8
		if dist3 {
			dist |= int(src[pos+2]) << 16
		}
		dist++
		pos += dBytes
		start := len(out) - dist
		if start < base {
			return nil, fmt.Errorf("%w: match distance %d before start", ErrCorrupt, dist)
		}
		for k := 0; k < mlen; k++ { // byte-wise copy handles overlap
			out = append(out, out[start+k])
		}
	}
	if len(out)-base != origLen {
		return nil, fmt.Errorf("%w: decoded %d bytes, want %d", ErrCorrupt, len(out)-base, origLen)
	}
	return out, nil
}

func lzHash(b []byte, bits uint) uint32 {
	v := binary.LittleEndian.Uint32(b)
	return (v * 2654435761) >> (32 - bits)
}

func matchLen(src []byte, a, b, limit int) int {
	l := 0
	for b+l < limit && src[a+l] == src[b+l] {
		l++
	}
	return l
}
