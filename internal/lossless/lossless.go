// Package lossless implements the lossless codec suite evaluated in the
// paper (Table II): blosc-lz, zlib, gzip, a zstd-like LZ+Huffman codec
// and an xz-like deep-search variant.
//
// Every codec produces a self-describing buffer (the original length is
// embedded), so Decompress needs no side information. Codecs are
// obtained by name through New, mirroring how the paper's Python
// pipeline selects its lossless backend.
package lossless

import (
	"errors"
	"fmt"
	"sync"
)

// Codec is a lossless byte compressor.
type Codec interface {
	// Name returns the canonical codec name.
	Name() string
	// Compress encodes src into a self-describing buffer.
	Compress(src []byte) ([]byte, error)
	// AppendCompress appends the encoding of src to dst and returns the
	// extended buffer, letting callers assemble frames without an
	// intermediate copy. dst may be nil; the bytes appended are exactly
	// what Compress would return.
	AppendCompress(dst, src []byte) ([]byte, error)
	// Decompress decodes a buffer produced by Compress.
	Decompress(src []byte) ([]byte, error)
}

// AppendDecompressor is implemented by codecs whose Decompress can
// write into a caller-supplied buffer. Callers that decompress
// transient payloads (e.g. the SZ lossless stage) probe for it to
// recycle scratch across calls.
type AppendDecompressor interface {
	// AppendDecompress appends the decoded bytes to dst and returns the
	// extended buffer. dst may be nil.
	AppendDecompress(dst, src []byte) ([]byte, error)
}

// payloadScratch recycles the transient buffers handed out by
// DecompressTransient.
var payloadScratch = sync.Pool{
	New: func() interface{} { return new([]byte) },
}

// DecompressTransient decompresses src through c, writing into pooled
// scratch when the codec supports append-style decompression — the
// shared unwrap step of the SZ decompressors, whose payloads are fully
// consumed before they return. When the returned scratch handle is
// non-nil, the payload's backing buffer is pooled: pass the handle to
// ReleaseTransient once the payload is no longer referenced.
func DecompressTransient(c Codec, src []byte) (payload []byte, scratch *[]byte, err error) {
	ad, ok := c.(AppendDecompressor)
	if !ok {
		payload, err = c.Decompress(src)
		return payload, nil, err
	}
	psc := payloadScratch.Get().(*[]byte)
	payload, err = ad.AppendDecompress((*psc)[:0], src)
	if err != nil {
		payloadScratch.Put(psc)
		return nil, nil, err
	}
	*psc = payload[:0] // keep the (possibly grown) buffer with the handle
	return payload, psc, nil
}

// ReleaseTransient returns a scratch handle obtained from
// DecompressTransient to the pool.
func ReleaseTransient(scratch *[]byte) { payloadScratch.Put(scratch) }

// ErrCorrupt reports a malformed compressed buffer.
var ErrCorrupt = errors.New("lossless: corrupt compressed buffer")

// Codec names accepted by New.
const (
	NameBloscLZ  = "blosclz"
	NameZlib     = "zlib"
	NameGzip     = "gzip"
	NameZstdLike = "zstdlike"
	NameXzLike   = "xzlike"
)

// New returns the codec registered under name.
func New(name string) (Codec, error) {
	switch name {
	case NameBloscLZ:
		return NewBloscLZ(4), nil
	case NameZlib:
		return newFlateCodec(NameZlib), nil
	case NameGzip:
		return newFlateCodec(NameGzip), nil
	case NameZstdLike:
		return NewLZH(ProfileZstd), nil
	case NameXzLike:
		return NewLZH(ProfileXz), nil
	default:
		return nil, fmt.Errorf("lossless: unknown codec %q", name)
	}
}

// Names lists all available codec names in Table II order.
func Names() []string {
	return []string{NameBloscLZ, NameGzip, NameXzLike, NameZlib, NameZstdLike}
}
