// Package lossless implements the lossless codec suite evaluated in the
// paper (Table II): blosc-lz, zlib, gzip, a zstd-like LZ+Huffman codec
// and an xz-like deep-search variant.
//
// Every codec produces a self-describing buffer (the original length is
// embedded), so Decompress needs no side information. Codecs are
// obtained by name through New, mirroring how the paper's Python
// pipeline selects its lossless backend.
package lossless

import (
	"errors"
	"fmt"
)

// Codec is a lossless byte compressor.
type Codec interface {
	// Name returns the canonical codec name.
	Name() string
	// Compress encodes src into a self-describing buffer.
	Compress(src []byte) ([]byte, error)
	// Decompress decodes a buffer produced by Compress.
	Decompress(src []byte) ([]byte, error)
}

// ErrCorrupt reports a malformed compressed buffer.
var ErrCorrupt = errors.New("lossless: corrupt compressed buffer")

// Codec names accepted by New.
const (
	NameBloscLZ  = "blosclz"
	NameZlib     = "zlib"
	NameGzip     = "gzip"
	NameZstdLike = "zstdlike"
	NameXzLike   = "xzlike"
)

// New returns the codec registered under name.
func New(name string) (Codec, error) {
	switch name {
	case NameBloscLZ:
		return NewBloscLZ(4), nil
	case NameZlib:
		return newFlateCodec(NameZlib), nil
	case NameGzip:
		return newFlateCodec(NameGzip), nil
	case NameZstdLike:
		return NewLZH(ProfileZstd), nil
	case NameXzLike:
		return NewLZH(ProfileXz), nil
	default:
		return nil, fmt.Errorf("lossless: unknown codec %q", name)
	}
}

// Names lists all available codec names in Table II order.
func Names() []string {
	return []string{NameBloscLZ, NameGzip, NameXzLike, NameZlib, NameZstdLike}
}
