// Package lossless implements the lossless codec suite evaluated in the
// paper (Table II): blosc-lz, zlib, gzip, a zstd-like LZ+Huffman codec
// and an xz-like deep-search variant.
//
// Every codec produces a self-describing buffer (the original length is
// embedded), so Decompress needs no side information. Codecs are
// obtained by name through New, mirroring how the paper's Python
// pipeline selects its lossless backend.
package lossless

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Codec is a lossless byte compressor.
type Codec interface {
	// Name returns the canonical codec name.
	Name() string
	// Compress encodes src into a self-describing buffer.
	Compress(src []byte) ([]byte, error)
	// AppendCompress appends the encoding of src to dst and returns the
	// extended buffer, letting callers assemble frames without an
	// intermediate copy. dst may be nil; the bytes appended are exactly
	// what Compress would return.
	AppendCompress(dst, src []byte) ([]byte, error)
	// Decompress decodes a buffer produced by Compress.
	Decompress(src []byte) ([]byte, error)
}

// AppendDecompressor is implemented by codecs whose Decompress can
// write into a caller-supplied buffer. Callers that decompress
// transient payloads (e.g. the SZ lossless stage) probe for it to
// recycle scratch across calls.
type AppendDecompressor interface {
	// AppendDecompress appends the decoded bytes to dst and returns the
	// extended buffer. dst may be nil.
	AppendDecompress(dst, src []byte) ([]byte, error)
}

// payloadScratch recycles the transient buffers handed out by
// DecompressTransient.
var payloadScratch = sync.Pool{
	New: func() interface{} { return new([]byte) },
}

// DecompressTransient decompresses src through c, writing into pooled
// scratch when the codec supports append-style decompression — the
// shared unwrap step of the SZ decompressors, whose payloads are fully
// consumed before they return. When the returned scratch handle is
// non-nil, the payload's backing buffer is pooled: pass the handle to
// ReleaseTransient once the payload is no longer referenced.
func DecompressTransient(c Codec, src []byte) (payload []byte, scratch *[]byte, err error) {
	ad, ok := c.(AppendDecompressor)
	if !ok {
		payload, err = c.Decompress(src)
		return payload, nil, err
	}
	psc := payloadScratch.Get().(*[]byte)
	payload, err = ad.AppendDecompress((*psc)[:0], src)
	if err != nil {
		payloadScratch.Put(psc)
		return nil, nil, err
	}
	*psc = payload[:0] // keep the (possibly grown) buffer with the handle
	return payload, psc, nil
}

// ReleaseTransient returns a scratch handle obtained from
// DecompressTransient to the pool.
func ReleaseTransient(scratch *[]byte) { payloadScratch.Put(scratch) }

// ErrCorrupt reports a malformed compressed buffer.
var ErrCorrupt = errors.New("lossless: corrupt compressed buffer")

// Codec names accepted by New.
const (
	NameBloscLZ  = "blosclz"
	NameZlib     = "zlib"
	NameGzip     = "gzip"
	NameZstdLike = "zstdlike"
	NameXzLike   = "xzlike"
)

// The codec registry maps names to constructors. The five built-ins
// register below; downstream code can plug additional lossless codecs
// in through Register, and frames recording the registered name
// decompress through the same lookup.
var (
	registryMu sync.RWMutex
	registry   = map[string]func() Codec{}
)

func init() {
	for name, factory := range map[string]func() Codec{
		NameBloscLZ:  func() Codec { return NewBloscLZ(4) },
		NameZlib:     func() Codec { return newFlateCodec(NameZlib) },
		NameGzip:     func() Codec { return newFlateCodec(NameGzip) },
		NameZstdLike: func() Codec { return NewLZH(ProfileZstd) },
		NameXzLike:   func() Codec { return NewLZH(ProfileXz) },
	} {
		if err := Register(name, factory); err != nil {
			panic(err)
		}
	}
}

// Register makes factory available to New under name. Registering an
// empty name, a nil factory or a name that is already taken is an
// error; a process registers each codec exactly once (typically from
// init).
func Register(name string, factory func() Codec) error {
	if name == "" {
		return fmt.Errorf("lossless: register: empty name")
	}
	if factory == nil {
		return fmt.Errorf("lossless: register %q: nil factory", name)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("lossless: register %q: already registered", name)
	}
	registry[name] = factory
	return nil
}

// New returns the codec registered under name.
func New(name string) (Codec, error) {
	registryMu.RLock()
	factory, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("lossless: unknown codec %q", name)
	}
	return factory(), nil
}

// Names lists the registered codec names in sorted order — for the
// built-ins that is the paper's Table II order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
