package lossless

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenInput mimics an SZ payload: varint-ish header bytes, a run of
// packed float32 outliers and a Huffman body with byte-level repetition.
func goldenInput(n int) []byte {
	rng := rand.New(rand.NewSource(17))
	out := make([]byte, n)
	for i := range out {
		switch {
		case rng.Float64() < 0.6:
			out[i] = byte(rng.Intn(8))
		case rng.Float64() < 0.8:
			out[i] = out[max(0, i-64)]
		default:
			out[i] = byte(rng.Intn(256))
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestGoldenBitstream pins the lossless wire formats: every codec's
// compressed output must stay byte-identical to the committed golden
// streams, and the golden streams must keep decompressing.
func TestGoldenBitstream(t *testing.T) {
	src := goldenInput(60000)
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			c, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Compress(src)
			if err != nil {
				t.Fatalf("compress: %v", err)
			}
			path := filepath.Join("testdata", name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden file missing (run with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: compressed stream diverged from golden wire format (%d vs %d bytes)", name, len(got), len(want))
			}
			dec, err := c.Decompress(want)
			if err != nil {
				t.Fatalf("decompress golden: %v", err)
			}
			if !bytes.Equal(dec, src) {
				t.Fatalf("%s: golden stream did not decode to original input", name)
			}
		})
	}
}

// TestAppendCompressMatchesCompress checks every codec's append-style
// variant against Compress, including appending after a live prefix,
// and (where supported) AppendDecompress against Decompress.
func TestAppendCompressMatchesCompress(t *testing.T) {
	src := goldenInput(20000)
	prefix := []byte{1, 2, 3}
	for _, name := range Names() {
		c, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := c.Compress(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := c.AppendCompress(append([]byte(nil), prefix...), src)
		if err != nil {
			t.Fatalf("%s append: %v", name, err)
		}
		if !bytes.Equal(got[:len(prefix)], prefix) || !bytes.Equal(got[len(prefix):], want) {
			t.Fatalf("%s: AppendCompress disagrees with Compress", name)
		}
		ad, ok := c.(AppendDecompressor)
		if !ok {
			continue
		}
		dec, err := ad.AppendDecompress(append([]byte(nil), prefix...), want)
		if err != nil {
			t.Fatalf("%s append-decompress: %v", name, err)
		}
		if !bytes.Equal(dec[:len(prefix)], prefix) || !bytes.Equal(dec[len(prefix):], src) {
			t.Fatalf("%s: AppendDecompress disagrees with Decompress", name)
		}
	}
}
