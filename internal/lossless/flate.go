package lossless

import (
	"bytes"
	"compress/gzip"
	"compress/zlib"
	"fmt"
	"io"
)

// flateCodec backs the zlib and gzip entries of Table II with the
// standard library's DEFLATE implementation — the same algorithm the
// paper's zlib/gzip used.
type flateCodec struct {
	name string
}

func newFlateCodec(name string) *flateCodec { return &flateCodec{name: name} }

// Name implements Codec.
func (c *flateCodec) Name() string { return c.name }

// Compress implements Codec.
func (c *flateCodec) Compress(src []byte) ([]byte, error) {
	var buf bytes.Buffer
	var w io.WriteCloser
	var err error
	switch c.name {
	case NameZlib:
		w, err = zlib.NewWriterLevel(&buf, zlib.DefaultCompression)
	case NameGzip:
		w, err = gzip.NewWriterLevel(&buf, gzip.DefaultCompression)
	default:
		return nil, fmt.Errorf("lossless: bad flate codec %q", c.name)
	}
	if err != nil {
		return nil, fmt.Errorf("lossless: %s writer: %w", c.name, err)
	}
	if _, err := w.Write(src); err != nil {
		return nil, fmt.Errorf("lossless: %s write: %w", c.name, err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("lossless: %s close: %w", c.name, err)
	}
	return buf.Bytes(), nil
}

// AppendCompress implements Codec. DEFLATE streams through an internal
// bytes.Buffer, so this append variant costs one copy — acceptable on
// the metadata path these codecs serve.
func (c *flateCodec) AppendCompress(dst, src []byte) ([]byte, error) {
	out, err := c.Compress(src)
	if err != nil {
		return nil, err
	}
	return append(dst, out...), nil
}

// Decompress implements Codec.
func (c *flateCodec) Decompress(src []byte) ([]byte, error) {
	var r io.ReadCloser
	var err error
	switch c.name {
	case NameZlib:
		r, err = zlib.NewReader(bytes.NewReader(src))
	case NameGzip:
		r, err = gzip.NewReader(bytes.NewReader(src))
	default:
		return nil, fmt.Errorf("lossless: bad flate codec %q", c.name)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, c.name, err)
	}
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, c.name, err)
	}
	return out, nil
}
