package sz3

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"fedsz/internal/lossy"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func goldenData(n int) []float32 {
	rng := rand.New(rand.NewSource(13))
	data := make([]float32, n)
	for i := range data {
		data[i] = float32(i%613)*2e-3 + float32(rng.NormFloat64())*0.04
		if rng.Float64() < 0.002 {
			data[i] *= 1e4
		}
	}
	return data
}

// TestGoldenBitstream pins the SZ3 wire format (see the sz2 golden test
// for the contract: new encoders byte-identical, old streams decode).
func TestGoldenBitstream(t *testing.T) {
	data := goldenData(30000)
	cases := []struct {
		name string
		c    *Compressor
		p    lossy.Params
	}{
		{"rel1e2", New(), lossy.RelBound(1e-2)},
		{"linear_nolossless", New(WithLinearOnly(), WithLosslessStage(nil)), lossy.AbsBound(1e-3)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.c.Compress(data, tc.p)
			if err != nil {
				t.Fatalf("compress: %v", err)
			}
			path := filepath.Join("testdata", "sz3_"+tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden file missing (run with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: compressed stream diverged from golden wire format (%d vs %d bytes)", tc.name, len(got), len(want))
			}
			dec, err := tc.c.Decompress(want)
			if err != nil {
				t.Fatalf("decompress golden: %v", err)
			}
			eb, err := tc.p.Resolve(data)
			if err != nil {
				t.Fatal(err)
			}
			if e := lossy.MaxAbsError(data, dec); e > eb {
				t.Fatalf("golden decode error %g exceeds bound %g", e, eb)
			}
		})
	}
}
