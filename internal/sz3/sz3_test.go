package sz3

import (
	"math"
	"math/rand"
	"testing"

	"fedsz/internal/lossy"
	"fedsz/internal/lossy/lossytest"
	"fedsz/internal/sz2"
)

func TestConformance(t *testing.T) {
	lossytest.Run(t, New())
}

func TestConformanceLinearOnly(t *testing.T) {
	lossytest.Run(t, New(WithLinearOnly()))
}

func TestConformanceNoLossless(t *testing.T) {
	lossytest.Run(t, New(WithLosslessStage(nil)))
}

func TestName(t *testing.T) {
	if New().Name() != "sz3" {
		t.Fatal("name")
	}
}

func TestVisitCoversAllIndicesOnce(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 7, 8, 9, 100, 1023, 1024, 1025} {
		seen := make([]int, n)
		visit(n, func(i, stride int, cubicOK bool) {
			seen[i]++
		})
		if seen[0] != 0 {
			t.Fatalf("n=%d: index 0 must not be visited", n)
		}
		for i := 1; i < n; i++ {
			if seen[i] != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, seen[i])
			}
		}
	}
}

func TestVisitStrideDecodesBeforeUse(t *testing.T) {
	// Every prediction must depend only on already-visited indices.
	n := 513
	done := make([]bool, n)
	done[0] = true
	visit(n, func(i, stride int, cubicOK bool) {
		deps := []int{i - stride}
		if i+stride < n {
			deps = append(deps, i+stride)
		}
		if cubicOK {
			deps = append(deps, i-3*stride, i+3*stride)
		}
		for _, d := range deps {
			if d < 0 || d >= n {
				t.Fatalf("dep %d out of range for i=%d stride=%d", d, i, stride)
			}
			if !done[d] {
				t.Fatalf("index %d uses unvisited dependency %d (stride %d)", i, d, stride)
			}
		}
		done[i] = true
	})
}

func TestCubicBeatsLinearOnSmoothData(t *testing.T) {
	data := make([]float32, 16384)
	for i := range data {
		x := float64(i) / 1024
		data[i] = float32(math.Sin(2*math.Pi*x) + 0.2*math.Cos(9*x))
	}
	p := lossy.RelBound(1e-3)
	cubic, err := New().Compress(data, p)
	if err != nil {
		t.Fatal(err)
	}
	linear, err := New(WithLinearOnly()).Compress(data, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cubic) > len(linear) {
		t.Fatalf("cubic (%d) should beat linear (%d) on smooth data", len(cubic), len(linear))
	}
}

func TestSZ3NearSZ2OnSpikyData(t *testing.T) {
	// Paper §V-D3: SZ2 and SZ3 exhibit similar ratios on spiky FL data.
	data := lossytest.Corpus(11)["spiky"]
	p := lossy.RelBound(1e-2)
	cr3 := lossytest.CompressionRatio(t, New(), data, p)
	cr2 := lossytest.CompressionRatio(t, sz2.New(), data, p)
	ratio := cr3 / cr2
	if ratio < 0.6 || ratio > 1.7 {
		t.Fatalf("SZ3 CR %.2f should be comparable to SZ2 CR %.2f", cr3, cr2)
	}
}

func TestSZ3BeatsSZ2OnSmoothHighBound(t *testing.T) {
	// The interpolation predictor gives SZ3 an edge on smooth data at
	// high error bounds (paper §II-A).
	data := make([]float32, 32768)
	for i := range data {
		x := float64(i) / 2048
		data[i] = float32(math.Sin(2 * math.Pi * x))
	}
	p := lossy.RelBound(1e-1)
	b3, err := New().Compress(data, p)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := sz2.New().Compress(data, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(b3) > len(b2) {
		t.Fatalf("SZ3 (%d bytes) should beat SZ2 (%d bytes) on smooth data at 1e-1",
			len(b3), len(b2))
	}
}

func BenchmarkCompress(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	data := make([]float32, 1<<20)
	for i := range data {
		data[i] = float32(rng.NormFloat64() * 0.05)
	}
	c := New()
	b.SetBytes(int64(len(data) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(data, lossy.RelBound(1e-2)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	data := make([]float32, 1<<20)
	for i := range data {
		data[i] = float32(rng.NormFloat64() * 0.05)
	}
	c := New()
	buf, err := c.Compress(data, lossy.RelBound(1e-2))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(buf); err != nil {
			b.Fatal(err)
		}
	}
}
