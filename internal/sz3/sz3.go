// Package sz3 implements an interpolation-based error-bounded lossy
// compressor modelled on SZ3 (Liang et al., IEEE TBD 2023; Zhao et al.,
// ICDE 2021 "dynamic spline interpolation").
//
// Where SZ2 predicts each value from its immediate predecessor (plus a
// per-block regression), SZ3 predicts values by multi-level spline
// interpolation on a dyadic grid: the coarsest sample is stored
// exactly, then each level predicts the midpoints of the previous level
// with cubic (falling back to linear) interpolation, quantizing the
// residuals with the same error-bounded quantizer, Huffman stage and
// lossless backend as SZ2. This reproduces the paper's observation that
// SZ3 reaches similar ratios to SZ2 on spiky 1-D data at lower
// throughput (the predictor is costlier and level-ordered).
//
// Like sz2, the hot paths are pooled and the decode side fuses the
// streaming entropy decoder with the interpolation walk, reconstructing
// directly into the output slice (reconstructions are float32-rounded
// on both sides, so no float64 shadow array is needed).
package sz3

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"fedsz/internal/huffman"
	"fedsz/internal/lossless"
	"fedsz/internal/lossy"
	"fedsz/internal/quant"
)

const magic = "SZ3\x01"

// compScratch bundles the encode-side transients, recycled across
// Compress calls.
type compScratch struct {
	codes    []int32
	recon    []float32
	outliers []float32
	payload  []byte
}

var compPool = sync.Pool{
	New: func() interface{} { return new(compScratch) },
}

func init() {
	lossy.MustRegister("sz3", func() lossy.Compressor { return New() })
}

// Option configures the compressor.
type Option func(*Compressor)

// WithLosslessStage overrides the final lossless stage (nil disables).
func WithLosslessStage(c lossless.Codec) Option {
	return func(s *Compressor) { s.backend = c }
}

// WithLinearOnly disables cubic interpolation (ablation).
func WithLinearOnly() Option {
	return func(s *Compressor) { s.linearOnly = true }
}

// Compressor is the SZ3 codec.
type Compressor struct {
	backend    lossless.Codec
	linearOnly bool
}

var _ lossy.Compressor = (*Compressor)(nil)

// New returns an SZ3 compressor with the default configuration.
func New(opts ...Option) *Compressor {
	s := &Compressor{backend: lossless.NewLZH(lossless.ProfileZstd)}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Name implements lossy.Compressor.
func (s *Compressor) Name() string { return "sz3" }

// Compress implements lossy.Compressor.
func (s *Compressor) Compress(data []float32, p lossy.Params) ([]byte, error) {
	eb, err := p.Resolve(data)
	if err != nil {
		return nil, fmt.Errorf("sz3: %w", err)
	}
	if len(data) == 0 {
		return lossy.WriteHeader(magic, 0, eb), nil
	}
	q := quant.New(eb, 0)
	radius := q.Radius()

	sc := compPool.Get().(*compScratch)
	defer compPool.Put(sc)
	if cap(sc.recon) < len(data) {
		sc.recon = make([]float32, len(data))
	}
	recon := sc.recon[:len(data)]
	recon[0] = data[0] // anchor stored exactly
	codes := sc.codes[:0]
	outliers := sc.outliers[:0]

	visit(len(data), func(i, s_ int, cubicOK bool) {
		pred := s.predict(recon, i, s_, cubicOK)
		code, r, ok := q.Encode(float64(data[i]), pred)
		if ok {
			r = float64(float32(r)) // decoder rounds to float32
			if math.Abs(r-float64(data[i])) > eb {
				ok = false
			}
		}
		if !ok {
			codes = append(codes, 0)
			outliers = append(outliers, data[i])
			recon[i] = data[i]
			return
		}
		codes = append(codes, int32(code+radius+1))
		recon[i] = float32(r)
	})

	payload := sc.payload[:0]
	payload = binary.AppendUvarint(payload, uint64(radius))
	var flags byte
	if s.linearOnly {
		flags |= 1
	}
	payload = append(payload, flags)
	payload = binary.LittleEndian.AppendUint32(payload, math.Float32bits(data[0]))
	payload = binary.AppendUvarint(payload, uint64(len(outliers)))
	for _, v := range outliers {
		payload = binary.LittleEndian.AppendUint32(payload, math.Float32bits(v))
	}
	payload, err = huffman.AppendEncode(payload, codes)
	sc.codes, sc.outliers, sc.payload = codes[:0], outliers[:0], payload[:0]
	if err != nil {
		return nil, fmt.Errorf("sz3: entropy stage: %w", err)
	}

	out := make([]byte, 0, lossy.MaxHeaderLen+1+len(payload))
	out = lossy.AppendHeader(out, magic, len(data), eb)
	if s.backend != nil {
		mark := len(out)
		out = append(out, 1)
		out, err = s.backend.AppendCompress(out, payload)
		if err != nil {
			return nil, fmt.Errorf("sz3: lossless stage: %w", err)
		}
		if len(out)-mark-1 < len(payload) {
			return out, nil
		}
		out = out[:mark] // wrap did not shrink: fall back to raw payload
	}
	out = append(out, 0)
	return append(out, payload...), nil
}

// Decompress implements lossy.Compressor.
func (s *Compressor) Decompress(buf []byte) ([]float32, error) {
	count, eb, rest, err := lossy.ReadHeader(magic, buf)
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return nil, nil
	}
	if len(rest) < 1 {
		return nil, fmt.Errorf("%w: sz3 missing stage flag", lossy.ErrCorrupt)
	}
	payload := rest[1:]
	if rest[0] == 1 {
		backend := s.backend
		if backend == nil {
			backend = lossless.NewLZH(lossless.ProfileZstd)
		}
		var psc *[]byte
		payload, psc, err = lossless.DecompressTransient(backend, payload)
		if psc != nil {
			defer lossless.ReleaseTransient(psc)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: sz3 lossless stage: %v", lossy.ErrCorrupt, err)
		}
	}

	radius64, n := binary.Uvarint(payload)
	if n <= 0 || len(payload) < n+5 {
		return nil, fmt.Errorf("%w: sz3 header", lossy.ErrCorrupt)
	}
	payload = payload[n:]
	radius := int(radius64)
	linearOnly := payload[0]&1 == 1
	anchor := math.Float32frombits(binary.LittleEndian.Uint32(payload[1:5]))
	payload = payload[5:]

	nOut, n := binary.Uvarint(payload)
	// Division form: int(nOut)*4 could overflow on a forged count.
	if n <= 0 || nOut > uint64(len(payload)-n)/4 {
		return nil, fmt.Errorf("%w: sz3 outliers", lossy.ErrCorrupt)
	}
	payload = payload[n:]
	outlierBytes := payload[:int(nOut)*4]
	payload = payload[int(nOut)*4:]

	// Entropy stage, streamed and fused with the interpolation walk;
	// reconstruction happens directly in the output slice.
	dec := huffman.AcquireDecoder()
	defer dec.Release()
	if err := dec.Open(payload); err != nil {
		return nil, fmt.Errorf("%w: sz3 entropy stage: %v", lossy.ErrCorrupt, err)
	}
	if dec.Count() != count-1 {
		return nil, fmt.Errorf("%w: sz3 code count %d != %d", lossy.ErrCorrupt, dec.Count(), count-1)
	}

	pc := &Compressor{linearOnly: linearOnly}
	q := quant.New(eb, radius)
	out := make([]float32, count)
	out[0] = anchor
	oi := 0
	var decodeErr error
	visit(count, func(i, s_ int, cubicOK bool) {
		if decodeErr != nil {
			return
		}
		code, err := dec.Next()
		if err != nil {
			decodeErr = fmt.Errorf("%w: sz3 entropy stage: %v", lossy.ErrCorrupt, err)
			return
		}
		if code == 0 {
			if (oi+1)*4 > len(outlierBytes) {
				decodeErr = fmt.Errorf("%w: sz3 outlier underrun", lossy.ErrCorrupt)
				return
			}
			out[i] = math.Float32frombits(binary.LittleEndian.Uint32(outlierBytes[oi*4:]))
			oi++
			return
		}
		pred := pc.predict(out, i, s_, cubicOK)
		out[i] = float32(q.Decode(int(code)-radius-1, pred))
	})
	if decodeErr != nil {
		return nil, decodeErr
	}
	return out, nil
}

// visit walks the dyadic interpolation grid from the coarsest stride to
// stride 1, invoking fn for every index except 0 in a deterministic
// order shared by encoder and decoder. cubicOK reports whether all four
// cubic neighbors are in range.
func visit(n int, fn func(i, stride int, cubicOK bool)) {
	if n < 2 {
		return
	}
	maxStride := 1
	for maxStride*2 < n {
		maxStride *= 2
	}
	for s := maxStride; s >= 1; s /= 2 {
		for i := s; i < n; i += 2 * s {
			cubicOK := i-3*s >= 0 && i+3*s < n
			fn(i, s, cubicOK)
		}
	}
}

// predict computes the interpolation prediction for index i at the
// given stride using already-reconstructed dyadic neighbors. The
// neighbors are float32-rounded on both encode and decode, so float32
// storage loses nothing; the arithmetic itself stays in float64.
func (s *Compressor) predict(recon []float32, i, stride int, cubicOK bool) float64 {
	n := len(recon)
	left := float64(recon[i-stride])
	if i+stride >= n {
		return left // boundary: Lorenzo fallback
	}
	right := float64(recon[i+stride])
	if cubicOK && !s.linearOnly {
		l2 := float64(recon[i-3*stride])
		r2 := float64(recon[i+3*stride])
		return (-l2 + 9*left + 9*right - r2) / 16
	}
	return (left + right) / 2
}
