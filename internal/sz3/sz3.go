// Package sz3 implements an interpolation-based error-bounded lossy
// compressor modelled on SZ3 (Liang et al., IEEE TBD 2023; Zhao et al.,
// ICDE 2021 "dynamic spline interpolation").
//
// Where SZ2 predicts each value from its immediate predecessor (plus a
// per-block regression), SZ3 predicts values by multi-level spline
// interpolation on a dyadic grid: the coarsest sample is stored
// exactly, then each level predicts the midpoints of the previous level
// with cubic (falling back to linear) interpolation, quantizing the
// residuals with the same error-bounded quantizer, Huffman stage and
// lossless backend as SZ2. This reproduces the paper's observation that
// SZ3 reaches similar ratios to SZ2 on spiky 1-D data at lower
// throughput (the predictor is costlier and level-ordered).
package sz3

import (
	"encoding/binary"
	"fmt"
	"math"

	"fedsz/internal/huffman"
	"fedsz/internal/lossless"
	"fedsz/internal/lossy"
	"fedsz/internal/quant"
)

const magic = "SZ3\x01"

// Option configures the compressor.
type Option func(*Compressor)

// WithLosslessStage overrides the final lossless stage (nil disables).
func WithLosslessStage(c lossless.Codec) Option {
	return func(s *Compressor) { s.backend = c }
}

// WithLinearOnly disables cubic interpolation (ablation).
func WithLinearOnly() Option {
	return func(s *Compressor) { s.linearOnly = true }
}

// Compressor is the SZ3 codec.
type Compressor struct {
	backend    lossless.Codec
	linearOnly bool
}

var _ lossy.Compressor = (*Compressor)(nil)

// New returns an SZ3 compressor with the default configuration.
func New(opts ...Option) *Compressor {
	s := &Compressor{backend: lossless.NewLZH(lossless.ProfileZstd)}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Name implements lossy.Compressor.
func (s *Compressor) Name() string { return "sz3" }

// Compress implements lossy.Compressor.
func (s *Compressor) Compress(data []float32, p lossy.Params) ([]byte, error) {
	eb, err := p.Resolve(data)
	if err != nil {
		return nil, fmt.Errorf("sz3: %w", err)
	}
	out := lossy.WriteHeader(magic, len(data), eb)
	if len(data) == 0 {
		return out, nil
	}
	q := quant.New(eb, 0)
	radius := q.Radius()

	recon := make([]float64, len(data))
	recon[0] = float64(data[0]) // anchor stored exactly
	codes := make([]int, 0, len(data))
	outliers := make([]float32, 0, 16)

	visit(len(data), func(i, s_ int, cubicOK bool) {
		pred := s.predict(recon, i, s_, cubicOK)
		code, r, ok := q.Encode(float64(data[i]), pred)
		if ok {
			r = float64(float32(r)) // decoder rounds to float32
			if math.Abs(r-float64(data[i])) > eb {
				ok = false
			}
		}
		if !ok {
			codes = append(codes, 0)
			outliers = append(outliers, data[i])
			recon[i] = float64(data[i])
			return
		}
		codes = append(codes, code+radius+1)
		recon[i] = r
	})

	huff, err := huffman.Encode(codes)
	if err != nil {
		return nil, fmt.Errorf("sz3: entropy stage: %w", err)
	}

	payload := make([]byte, 0, len(huff)+len(outliers)*4+16)
	payload = binary.AppendUvarint(payload, uint64(radius))
	var flags byte
	if s.linearOnly {
		flags |= 1
	}
	payload = append(payload, flags)
	payload = binary.LittleEndian.AppendUint32(payload, math.Float32bits(data[0]))
	payload = binary.AppendUvarint(payload, uint64(len(outliers)))
	for _, v := range outliers {
		payload = binary.LittleEndian.AppendUint32(payload, math.Float32bits(v))
	}
	payload = append(payload, huff...)

	if s.backend != nil {
		wrapped, err := s.backend.Compress(payload)
		if err != nil {
			return nil, fmt.Errorf("sz3: lossless stage: %w", err)
		}
		if len(wrapped) < len(payload) {
			out = append(out, 1)
			return append(out, wrapped...), nil
		}
	}
	out = append(out, 0)
	return append(out, payload...), nil
}

// Decompress implements lossy.Compressor.
func (s *Compressor) Decompress(buf []byte) ([]float32, error) {
	count, eb, rest, err := lossy.ReadHeader(magic, buf)
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return nil, nil
	}
	if len(rest) < 1 {
		return nil, fmt.Errorf("%w: sz3 missing stage flag", lossy.ErrCorrupt)
	}
	payload := rest[1:]
	if rest[0] == 1 {
		backend := s.backend
		if backend == nil {
			backend = lossless.NewLZH(lossless.ProfileZstd)
		}
		payload, err = backend.Decompress(payload)
		if err != nil {
			return nil, fmt.Errorf("%w: sz3 lossless stage: %v", lossy.ErrCorrupt, err)
		}
	}

	radius64, n := binary.Uvarint(payload)
	if n <= 0 || len(payload) < n+5 {
		return nil, fmt.Errorf("%w: sz3 header", lossy.ErrCorrupt)
	}
	payload = payload[n:]
	radius := int(radius64)
	linearOnly := payload[0]&1 == 1
	anchor := math.Float32frombits(binary.LittleEndian.Uint32(payload[1:5]))
	payload = payload[5:]

	nOut, n := binary.Uvarint(payload)
	// Division form: int(nOut)*4 could overflow on a forged count.
	if n <= 0 || nOut > uint64(len(payload)-n)/4 {
		return nil, fmt.Errorf("%w: sz3 outliers", lossy.ErrCorrupt)
	}
	payload = payload[n:]
	outliers := make([]float32, nOut)
	for i := range outliers {
		outliers[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[i*4:]))
	}
	payload = payload[nOut*4:]

	codes, err := huffman.Decode(payload)
	if err != nil {
		return nil, fmt.Errorf("%w: sz3 entropy stage: %v", lossy.ErrCorrupt, err)
	}
	if len(codes) != count-1 {
		return nil, fmt.Errorf("%w: sz3 code count %d != %d", lossy.ErrCorrupt, len(codes), count-1)
	}

	dec := &Compressor{linearOnly: linearOnly}
	q := quant.New(eb, radius)
	recon := make([]float64, count)
	recon[0] = float64(anchor)
	ci, oi := 0, 0
	var decodeErr error
	visit(count, func(i, s_ int, cubicOK bool) {
		if decodeErr != nil {
			return
		}
		code := codes[ci]
		ci++
		if code == 0 {
			if oi >= len(outliers) {
				decodeErr = fmt.Errorf("%w: sz3 outlier underrun", lossy.ErrCorrupt)
				return
			}
			recon[i] = float64(outliers[oi])
			oi++
			return
		}
		pred := dec.predict(recon, i, s_, cubicOK)
		recon[i] = float64(float32(q.Decode(code-radius-1, pred)))
	})
	if decodeErr != nil {
		return nil, decodeErr
	}
	out := make([]float32, count)
	for i, v := range recon {
		out[i] = float32(v)
	}
	return out, nil
}

// visit walks the dyadic interpolation grid from the coarsest stride to
// stride 1, invoking fn for every index except 0 in a deterministic
// order shared by encoder and decoder. cubicOK reports whether all four
// cubic neighbors are in range.
func visit(n int, fn func(i, stride int, cubicOK bool)) {
	if n < 2 {
		return
	}
	maxStride := 1
	for maxStride*2 < n {
		maxStride *= 2
	}
	for s := maxStride; s >= 1; s /= 2 {
		for i := s; i < n; i += 2 * s {
			cubicOK := i-3*s >= 0 && i+3*s < n
			fn(i, s, cubicOK)
		}
	}
}

// predict computes the interpolation prediction for index i at the
// given stride using already-reconstructed dyadic neighbors.
func (s *Compressor) predict(recon []float64, i, stride int, cubicOK bool) float64 {
	n := len(recon)
	left := recon[i-stride]
	if i+stride >= n {
		return left // boundary: Lorenzo fallback
	}
	right := recon[i+stride]
	if cubicOK && !s.linearOnly {
		l2 := recon[i-3*stride]
		r2 := recon[i+3*stride]
		return (-l2 + 9*left + 9*right - r2) / 16
	}
	return (left + right) / 2
}
