package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeWithinBound(t *testing.T) {
	q := New(0.01, 0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		pred := rng.NormFloat64()
		val := pred + rng.NormFloat64()*0.5
		code, recon, ok := q.Encode(val, pred)
		if !ok {
			continue
		}
		if got := q.Decode(code, pred); got != recon {
			t.Fatalf("decode mismatch: %v vs %v", got, recon)
		}
		if math.Abs(recon-val) > 0.01*(1+1e-9) {
			t.Fatalf("bound violated: |%v-%v| = %v", recon, val, math.Abs(recon-val))
		}
	}
}

func TestUnpredictable(t *testing.T) {
	q := New(1e-6, 4)
	if _, _, ok := q.Encode(1.0, 0.0); ok {
		t.Fatal("expected unpredictable for huge error with tiny radius")
	}
	if _, _, ok := q.Encode(math.NaN(), 0.0); ok {
		t.Fatal("expected unpredictable for NaN")
	}
}

func TestZeroErrorIsCodeZero(t *testing.T) {
	q := New(0.5, 0)
	code, recon, ok := q.Encode(3.25, 3.25)
	if !ok || code != 0 || recon != 3.25 {
		t.Fatalf("got code=%d recon=%v ok=%v", code, recon, ok)
	}
}

func TestPanicsOnBadBound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for eb <= 0")
		}
	}()
	New(0, 0)
}

func TestDefaults(t *testing.T) {
	q := New(0.1, 0)
	if q.Radius() != DefaultRadius {
		t.Fatalf("radius = %d", q.Radius())
	}
	if q.Bound() != 0.1 {
		t.Fatalf("bound = %v", q.Bound())
	}
}

// Property: for any (val, pred) pair, either the value is flagged
// unpredictable or the round-trip honors the bound exactly.
func TestQuickBoundInvariant(t *testing.T) {
	q := New(0.003, 0)
	f := func(val, pred float64) bool {
		if math.IsNaN(val) || math.IsInf(val, 0) || math.IsNaN(pred) || math.IsInf(pred, 0) {
			return true
		}
		code, recon, ok := q.Encode(val, pred)
		if !ok {
			return true
		}
		if q.Decode(code, pred) != recon {
			return false
		}
		return math.Abs(recon-val) <= 0.003*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
