// Package quant implements the error-bounded linear quantizer shared by
// the prediction-based compressors (SZ2, SZ3).
//
// Prediction errors are mapped onto integer codes with step 2ε, which
// guarantees that the reconstructed value differs from the original by
// at most ε (the absolute error bound). Codes outside the configured
// radius mark the value "unpredictable"; such values are stored
// verbatim by the caller.
package quant

import "math"

// DefaultRadius matches SZ's default 2^15 quantization intervals to
// either side of zero.
const DefaultRadius = 32768

// Quantizer maps prediction errors to integer codes with a fixed
// absolute error bound.
type Quantizer struct {
	eb     float64 // absolute error bound (half step)
	step   float64 // 2*eb
	radius int
}

// New returns a Quantizer with absolute bound eb > 0 and the given
// radius (maximum |code|). A non-positive radius selects DefaultRadius.
func New(eb float64, radius int) Quantizer {
	if eb <= 0 {
		panic("quant: error bound must be positive")
	}
	if radius <= 0 {
		radius = DefaultRadius
	}
	return Quantizer{eb: eb, step: 2 * eb, radius: radius}
}

// Bound returns the absolute error bound.
func (q Quantizer) Bound() float64 { return q.eb }

// Radius returns the maximum code magnitude.
func (q Quantizer) Radius() int { return q.radius }

// Encode quantizes the difference between val and pred. It returns the
// integer code, the reconstructed value the decoder will produce, and
// whether the value was quantizable. When ok is false the caller must
// store val exactly.
func (q Quantizer) Encode(val, pred float64) (code int, recon float64, ok bool) {
	diff := val - pred
	c := math.Round(diff / q.step)
	if math.Abs(c) > float64(q.radius) || math.IsNaN(c) {
		return 0, 0, false
	}
	code = int(c)
	recon = pred + float64(code)*q.step
	// Guard against floating-point edge cases: if rounding pushed the
	// reconstruction outside the bound, treat as unpredictable.
	if math.Abs(recon-val) > q.eb*(1+1e-9) {
		return 0, 0, false
	}
	return code, recon, true
}

// Decode reconstructs a value from its code and prediction.
func (q Quantizer) Decode(code int, pred float64) float64 {
	return pred + float64(code)*q.step
}
