package lossy

import (
	"bytes"
	"errors"
	"testing"
)

func TestAdaptiveWrapRoundTrip(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5}
	buf := WrapAdaptive("sz2", payload)
	name, got, err := UnwrapAdaptive(buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "sz2" || !bytes.Equal(got, payload) {
		t.Fatalf("unwrap = %q/%v, want sz2/%v", name, got, payload)
	}
}

func TestAdaptiveWrapRejects(t *testing.T) {
	cases := map[string][]byte{
		"empty":        nil,
		"empty name":   WrapAdaptive("", []byte{1}),
		"self nested":  WrapAdaptive(NameAdaptive, []byte{1}),
		"truncated":    {200},
		"name too big": append([]byte{0xFF, 0xFF, 0x7F}, make([]byte, 16)...),
	}
	for label, buf := range cases {
		if _, _, err := UnwrapAdaptive(buf); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", label, err)
		}
	}
}

// The registered "adaptive" compressor's end-to-end path needs the
// built-in suite linked, so it is exercised from package core
// (TestAdaptiveRegistryCompressor in adaptive_test.go there); this
// package pins only the wrapper framing, which has no dependencies.
