// Package lossytest provides the shared conformance suite run against
// every error-bounded lossy compressor in the repository. Each
// compressor package invokes Run from its own tests, so all four codecs
// are held to the same contract:
//
//   - round-trip length preservation,
//   - the absolute error bound recorded in the header is honored,
//   - degenerate inputs (empty, constant, single value) survive,
//   - property-based random inputs stay within bound.
package lossytest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedsz/internal/lossy"
)

// Tolerance is the relative slack allowed on bound checks to absorb
// float32 rounding of reconstructed values.
const Tolerance = 1e-6

// Corpus returns named float32 datasets covering the shapes the
// compressors meet in practice.
func Corpus(seed int64) map[string][]float32 {
	rng := rand.New(rand.NewSource(seed))

	spiky := make([]float32, 8192) // FL-parameter-like: Gaussian + heavy tails
	for i := range spiky {
		v := rng.NormFloat64() * 0.05
		if rng.Float64() < 0.01 {
			v *= 20
		}
		spiky[i] = float32(v)
	}

	smooth := make([]float32, 8192) // scientific-data-like
	for i := range smooth {
		x := float64(i) / 512
		smooth[i] = float32(math.Sin(2*math.Pi*x) + 0.3*math.Sin(11*x))
	}

	steps := make([]float32, 4096) // piecewise constant
	level := float32(0)
	for i := range steps {
		if i%97 == 0 {
			level = float32(rng.NormFloat64())
		}
		steps[i] = level
	}

	tiny := []float32{1e-30, -1e-30, 2e-30, 0, -3e-30}

	return map[string][]float32{
		"empty":    {},
		"one":      {3.25},
		"constant": {1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5},
		"spiky":    spiky,
		"smooth":   smooth,
		"steps":    steps,
		"tiny":     tiny,
		"short":    {0.1, -0.2, 0.3},
	}
}

// Run executes the conformance suite against c with a strict error
// bound (modulo float32 rounding tolerance).
func Run(t *testing.T, c lossy.Compressor) {
	t.Helper()
	RunSlack(t, c, 1)
}

// RunSlack executes the conformance suite allowing maxErr up to
// slack×bound. ZFP's fixed-precision mode — the paper's "closest
// analogous option" to a relative bound — provides no hard error
// guarantee, so its suite runs with slack > 1.
func RunSlack(t *testing.T, c lossy.Compressor, slack float64) {
	t.Helper()

	bounds := []lossy.Params{
		lossy.RelBound(1e-1),
		lossy.RelBound(1e-2),
		lossy.RelBound(1e-3),
		lossy.RelBound(1e-4),
		lossy.AbsBound(1e-3),
	}

	for name, data := range Corpus(7) {
		for _, p := range bounds {
			name, data, p := name, data, p
			t.Run(name+"/"+p.Mode.String()+"/"+formatBound(p.Bound), func(t *testing.T) {
				buf, err := c.Compress(data, p)
				if err != nil {
					t.Fatalf("compress: %v", err)
				}
				got, err := c.Decompress(buf)
				if err != nil {
					t.Fatalf("decompress: %v", err)
				}
				if len(got) != len(data) {
					t.Fatalf("length: got %d want %d", len(got), len(data))
				}
				eb, err := p.Resolve(data)
				if err != nil {
					t.Fatal(err)
				}
				if maxErr := lossy.MaxAbsError(data, got); maxErr > eb*slack*(1+Tolerance) {
					t.Fatalf("bound violated: maxErr=%g > eb=%g (slack %g)", maxErr, eb, slack)
				}
			})
		}
	}

	t.Run("invalid-params", func(t *testing.T) {
		if _, err := c.Compress([]float32{1, 2}, lossy.Params{}); err == nil {
			t.Fatal("expected error for zero params")
		}
		if _, err := c.Compress([]float32{1, 2}, lossy.RelBound(-1)); err == nil {
			t.Fatal("expected error for negative bound")
		}
	})

	t.Run("corrupt-input", func(t *testing.T) {
		if _, err := c.Decompress([]byte("garbage!")); err == nil {
			t.Fatal("expected error for garbage input")
		}
		if _, err := c.Decompress(nil); err == nil {
			t.Fatal("expected error for empty input")
		}
	})

	t.Run("quick-bound-invariant", func(t *testing.T) {
		f := func(seed int64, n uint16, scalePow int8) bool {
			rng := rand.New(rand.NewSource(seed))
			size := int(n)%3000 + 1
			scale := math.Pow(2, float64(scalePow%20))
			data := make([]float32, size)
			for i := range data {
				data[i] = float32(rng.NormFloat64() * scale)
			}
			p := lossy.RelBound(1e-2)
			buf, err := c.Compress(data, p)
			if err != nil {
				return false
			}
			got, err := c.Decompress(buf)
			if err != nil || len(got) != len(data) {
				return false
			}
			eb, _ := p.Resolve(data)
			return lossy.MaxAbsError(data, got) <= eb*slack*(1+Tolerance)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatal(err)
		}
	})
}

// CompressionRatio round-trips data and returns the achieved ratio,
// failing the test on any error or bound violation.
func CompressionRatio(t *testing.T, c lossy.Compressor, data []float32, p lossy.Params) float64 {
	t.Helper()
	buf, err := c.Compress(data, p)
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	eb, err := p.Resolve(data)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr := lossy.MaxAbsError(data, got); maxErr > eb*(1+Tolerance) {
		t.Fatalf("bound violated: maxErr=%g > eb=%g", maxErr, eb)
	}
	return float64(len(data)*4) / float64(len(buf))
}

func formatBound(b float64) string {
	switch {
	case b >= 0.1:
		return "1e-1"
	case b >= 0.01:
		return "1e-2"
	case b >= 0.001:
		return "1e-3"
	default:
		return "1e-4"
	}
}
