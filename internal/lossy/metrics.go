package lossy

import "math"

// Metrics summarizes reconstruction quality of a lossy round trip with
// the figures of merit standard in the compression literature (and
// used by SZ/ZFP evaluations): maximum error, RMSE, range-normalized
// RMSE and PSNR.
type Metrics struct {
	MaxAbsErr float64
	RMSE      float64
	NRMSE     float64 // RMSE / value range
	PSNR      float64 // 20·log10(range/RMSE), dB; +Inf for exact
	Range     float64
}

// Evaluate computes reconstruction metrics between original and recon.
// Mismatched lengths yield MaxAbsErr = +Inf and zeroed statistics.
func Evaluate(original, recon []float32) Metrics {
	if len(original) != len(recon) || len(original) == 0 {
		return Metrics{MaxAbsErr: math.Inf(1)}
	}
	mn, mx := original[0], original[0]
	var sumSq, maxErr float64
	for i := range original {
		if original[i] < mn {
			mn = original[i]
		}
		if original[i] > mx {
			mx = original[i]
		}
		d := float64(original[i]) - float64(recon[i])
		if ad := math.Abs(d); ad > maxErr {
			maxErr = ad
		}
		sumSq += d * d
	}
	m := Metrics{
		MaxAbsErr: maxErr,
		RMSE:      math.Sqrt(sumSq / float64(len(original))),
		Range:     float64(mx) - float64(mn),
	}
	if m.Range > 0 {
		m.NRMSE = m.RMSE / m.Range
	}
	switch {
	case m.RMSE == 0:
		m.PSNR = math.Inf(1)
	case m.Range > 0:
		m.PSNR = 20 * math.Log10(m.Range/m.RMSE)
	}
	return m
}
