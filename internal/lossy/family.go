package lossy

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// A compressor family groups every configuration of one compression
// technique behind a single registry name: the four error-bounded
// lossy compressors (sz2, sz3, szx, zfp), the sparsifying families
// (topk, randk), quantizing families (qsgd) and the gradient-aware
// predictor (pred) all implement Family. The frame wire format records
// only the family name — each payload is self-describing, so one
// Decompress per family decodes every Setting — while the adaptive
// control plane (package adapt) probes the cross product of registered
// families and their parameter grids and records (family, Setting)
// pairs in its plans.

// Family kind labels, reported by Family.Kind. Kinds classify how a
// family trades fidelity for bytes; CLI listings group by them and
// Names() keeps its historical contract by listing only KindEBLC
// families (the paper's Table I sweep).
const (
	// KindEBLC marks error-bounded lossy compressors: every value is
	// reproduced within the absolute bound resolved from Params.
	KindEBLC = "eblc"
	// KindSparse marks sparsifying families that transmit a subset of
	// values and zero the rest.
	KindSparse = "sparse"
	// KindQuant marks quantizing families that transmit low-precision
	// codes for every value.
	KindQuant = "quant"
	// KindPred marks prediction-based gradient-aware families: error
	// bounded like KindEBLC but outside the paper's Table I suite, so
	// excluded from Names().
	KindPred = "pred"
)

// Setting is one point on a Family's parameter grid. The fields form
// a small union across family kinds — a family reads the fields its
// kind defines and ignores the rest — and the zero Setting is every
// family's default configuration, so legacy single-configuration
// compressors need no grid at all. The error bound is not a Setting:
// it travels through Params on every Compress call as it always has.
type Setting struct {
	// Fraction is the kept fraction for sparsifying families in
	// (0, 1). 0 selects the family's bound-derived default (for topk:
	// threshold sparsification at the absolute bound, which is error
	// bounded).
	Fraction float64
	// Bits is the code width for quantizing families. 0 derives the
	// width from the error bound (which makes the setting error
	// bounded); a fixed positive width trades fidelity for a known
	// ratio.
	Bits int
}

// IsZero reports whether s is the default setting.
func (s Setting) IsZero() bool { return s.Fraction == 0 && s.Bits == 0 }

// String renders the setting as a short stable label ("default",
// "frac=0.05", "bits=8") for logs, bench tables and CLI listings.
func (s Setting) String() string {
	var parts []string
	if s.Fraction != 0 {
		parts = append(parts, fmt.Sprintf("frac=%g", s.Fraction))
	}
	if s.Bits != 0 {
		parts = append(parts, fmt.Sprintf("bits=%d", s.Bits))
	}
	if len(parts) == 0 {
		return "default"
	}
	return strings.Join(parts, ",")
}

// Family is the typed contract every compressor family implements.
// Implementations register through RegisterFamily (or the deprecated
// Register shim, which wraps a bare Compressor factory); frames
// recording the family name decode through the same lookup built-ins
// use.
type Family interface {
	// Name is the registry name recorded in frame sections.
	Name() string
	// Kind classifies the family (KindEBLC, KindSparse, KindQuant,
	// KindPred, or a custom label).
	Kind() string
	// Grid returns the candidate settings the adaptive control plane
	// probes. A nil or empty grid means the family has exactly one
	// configuration: the zero Setting.
	Grid() []Setting
	// Bounded reports whether compressing at s honours the absolute
	// error bound resolved from Params. Unbounded settings (fractional
	// sparsification, fixed-width quantization) are only eligible for
	// adaptive selection when the caller opts in — typically paired
	// with error feedback so the dropped signal re-enters later
	// updates.
	Bounded(s Setting) bool
	// Compressor returns a Compressor encoding at setting s. Settings
	// outside the family's domain are an error. Decompress must accept
	// any payload the family ever produced regardless of s: payloads
	// are self-describing, and frame decoding always resolves the zero
	// Setting.
	Compressor(s Setting) (Compressor, error)
}

var (
	familyMu       sync.RWMutex
	familyRegistry = map[string]Family{}
	familyVariant  = map[string]bool{}
)

// RegisterFamily makes f available to FamilyByName (and, through it,
// to New and frame decoding) under f.Name(). Registering a nil
// family, an empty name or a name that is already taken is an error;
// a process registers each family exactly once (typically from init).
func RegisterFamily(f Family) error {
	return registerFamily(f, false)
}

// RegisterFamilyVariant registers a non-canonical family (e.g. the
// "adaptive" wrapper or "szx-artifact"): it resolves through
// FamilyByName like any other name but is excluded from Families and
// Names, so sweeps iterate only canonical families.
func RegisterFamilyVariant(f Family) error {
	return registerFamily(f, true)
}

func registerFamily(f Family, variant bool) error {
	if f == nil {
		return fmt.Errorf("lossy: register: nil family")
	}
	name := f.Name()
	if name == "" {
		return fmt.Errorf("lossy: register: empty family name")
	}
	familyMu.Lock()
	defer familyMu.Unlock()
	if _, dup := familyRegistry[name]; dup {
		return fmt.Errorf("lossy: register %q: already registered", name)
	}
	familyRegistry[name] = f
	familyVariant[name] = variant
	return nil
}

// MustRegisterFamily registers f or panics — the init-time form of
// RegisterFamily for built-in family packages.
func MustRegisterFamily(f Family) {
	if err := RegisterFamily(f); err != nil {
		panic(err)
	}
}

// FamilyByName returns the family registered under name.
func FamilyByName(name string) (Family, error) {
	familyMu.RLock()
	f, ok := familyRegistry[name]
	familyMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("lossy: unknown compressor %q", name)
	}
	return f, nil
}

// Families lists every canonical registered family name in sorted
// order, across all kinds. Variant registrations are omitted. Compare
// Names, which keeps its historical contract of listing only the
// KindEBLC families (the paper's Table I sweep).
func Families() []string {
	familyMu.RLock()
	defer familyMu.RUnlock()
	out := make([]string, 0, len(familyRegistry))
	for name := range familyRegistry {
		if !familyVariant[name] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// GridOf returns f's probe grid, normalizing a nil/empty grid to the
// single zero Setting so callers can range without special cases.
func GridOf(f Family) []Setting {
	if g := f.Grid(); len(g) > 0 {
		return g
	}
	return []Setting{{}}
}
