// Package lossy defines the common contract implemented by the four
// error-bounded lossy compressors (SZ2, SZ3, SZx, ZFP) and the helpers
// they share: error-bound modes, absolute-bound resolution and the
// self-describing container header.
//
// The container header mirrors the SZ C API's behaviour: a compressed
// buffer carries everything needed to decompress it (element count and
// the absolute bound that was applied), so Decompress requires no side
// information.
package lossy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"fedsz/internal/stats"
)

// Mode selects how Params.Bound is interpreted.
type Mode int

const (
	// Abs treats Bound as an absolute error bound ε: |x-x̂| ≤ ε.
	Abs Mode = iota + 1
	// Rel treats Bound as a value-range-relative bound:
	// ε = Bound × (max(x) − min(x)). This is the mode the paper uses
	// throughout (REL error bounds 1e-5 … 1e-1).
	Rel
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Abs:
		return "ABS"
	case Rel:
		return "REL"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Params configures a compression call.
type Params struct {
	Mode  Mode
	Bound float64
}

// RelBound is shorthand for Params{Mode: Rel, Bound: b}.
func RelBound(b float64) Params { return Params{Mode: Rel, Bound: b} }

// AbsBound is shorthand for Params{Mode: Abs, Bound: b}.
func AbsBound(b float64) Params { return Params{Mode: Abs, Bound: b} }

// ErrInvalidParams reports a non-positive or missing error bound.
var ErrInvalidParams = errors.New("lossy: invalid compression parameters")

// Resolve converts the parameters into the absolute bound to apply to
// data. For Rel mode, degenerate (constant) data resolves to a small
// positive bound so that compression still succeeds.
func (p Params) Resolve(data []float32) (float64, error) {
	if p.Bound <= 0 || math.IsNaN(p.Bound) || math.IsInf(p.Bound, 0) {
		return 0, fmt.Errorf("%w: bound %v", ErrInvalidParams, p.Bound)
	}
	switch p.Mode {
	case Abs:
		return p.Bound, nil
	case Rel:
		mn, mx := stats.MinMaxF32(data)
		r := float64(mx) - float64(mn)
		if r <= 0 {
			// Constant input: any positive bound preserves it; pick one
			// proportional to magnitude so the header stays meaningful.
			mag := math.Abs(float64(mn))
			if mag == 0 {
				mag = 1
			}
			return p.Bound * mag, nil
		}
		return p.Bound * r, nil
	default:
		return 0, fmt.Errorf("%w: mode %v", ErrInvalidParams, p.Mode)
	}
}

// Compressor is an error-bounded lossy compressor for 1-D float32 data
// (FL model parameters are flattened to 1-D before compression, paper
// §V-D3).
type Compressor interface {
	// Name returns the canonical compressor name ("sz2", "sz3", "szx",
	// "zfp").
	Name() string
	// Compress encodes data under the given error-bound parameters.
	Compress(data []float32, p Params) ([]byte, error)
	// Decompress decodes a buffer produced by Compress.
	Decompress(buf []byte) ([]float32, error)
}

// Container header: magic(4) | version(1) | count(varint) | absBound(8).
const (
	headerVersion = 1
	magicLen      = 4

	// maxCount bounds the element count a header may declare (2^40
	// float32s = 4 TiB — far beyond any model update) so untrusted
	// headers cannot drive integer overflow in downstream size
	// arithmetic.
	maxCount = 1 << 40
)

// ErrCorrupt reports a malformed compressed buffer.
var ErrCorrupt = errors.New("lossy: corrupt compressed buffer")

// MaxHeaderLen bounds the encoded size of the container header —
// useful for pre-sizing output buffers before AppendHeader.
const MaxHeaderLen = magicLen + 1 + 10 + 8

// WriteHeader prepends the standard container header for the given
// magic (exactly 4 bytes), element count and absolute bound.
func WriteHeader(magic string, count int, absBound float64) []byte {
	return AppendHeader(make([]byte, 0, MaxHeaderLen), magic, count, absBound)
}

// AppendHeader appends the standard container header to dst, letting
// compressors assemble header and payload in one pre-sized buffer.
func AppendHeader(dst []byte, magic string, count int, absBound float64) []byte {
	if len(magic) != magicLen {
		panic("lossy: magic must be 4 bytes")
	}
	dst = append(dst, magic...)
	dst = append(dst, headerVersion)
	dst = binary.AppendUvarint(dst, uint64(count))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(absBound))
	return dst
}

// ReadHeader validates and strips the container header, returning the
// element count, absolute bound and remaining payload.
func ReadHeader(magic string, buf []byte) (count int, absBound float64, rest []byte, err error) {
	if len(buf) < magicLen+1 || string(buf[:magicLen]) != magic {
		return 0, 0, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if buf[magicLen] != headerVersion {
		return 0, 0, nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, buf[magicLen])
	}
	buf = buf[magicLen+1:]
	c, n := binary.Uvarint(buf)
	if n <= 0 || len(buf) < n+8 {
		return 0, 0, nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	// The count drives output allocations in every decompressor; cap it
	// so a forged header can neither overflow int nor size a giant
	// allocation before the per-codec structural checks run.
	if c > maxCount {
		return 0, 0, nil, fmt.Errorf("%w: element count %d", ErrCorrupt, c)
	}
	absBound = math.Float64frombits(binary.LittleEndian.Uint64(buf[n : n+8]))
	// Resolve never produces a non-positive or non-finite bound, so a
	// header carrying one is forged; downstream quantizers are entitled
	// to panic on such bounds, so reject here.
	if absBound <= 0 || math.IsNaN(absBound) || math.IsInf(absBound, 0) {
		return 0, 0, nil, fmt.Errorf("%w: bound %v", ErrCorrupt, absBound)
	}
	return int(c), absBound, buf[n+8:], nil
}

// MaxAbsError returns the maximum absolute elementwise difference
// between a and b; used by tests and the experiment harness to verify
// bounds.
func MaxAbsError(a, b []float32) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}
