package lossy

import (
	"encoding/binary"
	"fmt"
)

// The "adaptive" compressor is the wire-format half of the adaptive
// compression control plane (package adapt): a frame whose header
// records this name carries, in each tensor section, a tiny wrapper
// naming the inner compressor that section was actually encoded with,
// followed by that compressor's ordinary self-describing payload. The
// absolute error bound travels inside the inner payload's container
// header exactly as it does for a static frame, so an adaptive frame
// records the per-section (compressor, bound) pair the control plane
// chose — and any decoder that resolves compressors through this
// registry (core.Decompress, the streaming Decoder, the aggregation
// fold path) decodes adaptive frames without modification.
//
// It registers as a variant, not a canonical name, so suite sweeps
// over Names() keep iterating only the paper's Table I compressors.

// NameAdaptive is the registry name recorded in the header of frames
// whose sections choose their compressor per tensor.
const NameAdaptive = "adaptive"

// adaptiveMaxName caps the inner-compressor name a wrapper may
// declare, so a forged wrapper cannot force a large allocation.
const adaptiveMaxName = 256

func init() {
	MustRegisterVariant(NameAdaptive, func() Compressor { return adaptiveCompressor{} })
}

// WrapAdaptive frames an inner compressor's payload for an adaptive
// section: uvarint(len(name)) | name | payload.
func WrapAdaptive(inner string, payload []byte) []byte {
	out := make([]byte, 0, binary.MaxVarintLen64+len(inner)+len(payload))
	out = binary.AppendUvarint(out, uint64(len(inner)))
	out = append(out, inner...)
	return append(out, payload...)
}

// UnwrapAdaptive reverses WrapAdaptive, returning the inner compressor
// name and its payload. The returned payload aliases buf.
func UnwrapAdaptive(buf []byte) (inner string, payload []byte, err error) {
	l, n := binary.Uvarint(buf)
	if n <= 0 || l > adaptiveMaxName || uint64(len(buf)-n) < l {
		return "", nil, fmt.Errorf("%w: adaptive wrapper header", ErrCorrupt)
	}
	inner = string(buf[n : n+int(l)])
	if inner == "" || inner == NameAdaptive {
		// An empty or self-referential inner name is forged; rejecting
		// the latter also makes unbounded recursion impossible.
		return "", nil, fmt.Errorf("%w: adaptive wrapper names %q", ErrCorrupt, inner)
	}
	return inner, buf[n+int(l):], nil
}

// adaptiveCompressor implements Compressor for the wrapper format.
// Compression through the bare registry name (WithCompressor
// ("adaptive") without a policy) delegates every tensor to the default
// inner compressor; the adaptive pipeline itself never calls this
// Compress — it picks the inner compressor per tensor and wraps the
// payload directly.
type adaptiveCompressor struct{}

// adaptiveDefaultInner is the inner compressor used when the wrapper
// is asked to compress without a control plane (the paper's winner).
const adaptiveDefaultInner = "sz2"

// Name implements Compressor.
func (adaptiveCompressor) Name() string { return NameAdaptive }

// Compress implements Compressor by delegating to the default inner
// compressor and wrapping its payload.
func (adaptiveCompressor) Compress(data []float32, p Params) ([]byte, error) {
	inner, err := New(adaptiveDefaultInner)
	if err != nil {
		return nil, err
	}
	comp, err := inner.Compress(data, p)
	if err != nil {
		return nil, err
	}
	return WrapAdaptive(adaptiveDefaultInner, comp), nil
}

// Decompress implements Compressor: read the inner name, resolve it
// through the registry, delegate.
func (adaptiveCompressor) Decompress(buf []byte) ([]float32, error) {
	name, payload, err := UnwrapAdaptive(buf)
	if err != nil {
		return nil, err
	}
	inner, err := New(name)
	if err != nil {
		return nil, fmt.Errorf("%w: adaptive section names unknown compressor %q", ErrCorrupt, name)
	}
	return inner.Decompress(payload)
}
