package lossy

import (
	"fmt"
	"sort"
)

// The name-keyed compressor API predates the typed family registry
// (family.go) and survives as thin shims over it: Register wraps a
// bare Compressor factory in a single-setting KindEBLC family, and New
// resolves a name to its family's default-setting compressor. Every
// historical call site — and every frame ever written, since frames
// record only names — keeps working byte-identically, while new code
// and the adaptive control plane see one registry of typed families.

// legacyFamily adapts a pre-family Compressor factory: one
// configuration (the zero Setting), error bounded, classified by the
// kind the registration shim chose.
type legacyFamily struct {
	name    string
	kind    string
	factory func() Compressor
}

func (f legacyFamily) Name() string         { return f.name }
func (f legacyFamily) Kind() string         { return f.kind }
func (f legacyFamily) Grid() []Setting      { return nil }
func (f legacyFamily) Bounded(Setting) bool { return true }
func (f legacyFamily) Compressor(s Setting) (Compressor, error) {
	if !s.IsZero() {
		return nil, fmt.Errorf("lossy: compressor %q has no setting %v", f.name, s)
	}
	return f.factory(), nil
}

// Register makes factory available to New under name, as a
// single-configuration error-bounded family. Registering an empty
// name, a nil factory or a name that is already taken is an error; a
// process registers each compressor exactly once (typically from
// init).
//
// Deprecated: new compressors should implement Family and call
// RegisterFamily, which additionally exposes a parameter grid to the
// adaptive control plane. Register remains for single-configuration
// error-bounded compressors and existing callers.
func Register(name string, factory func() Compressor) error {
	if name == "" {
		return fmt.Errorf("lossy: register: empty name")
	}
	if factory == nil {
		return fmt.Errorf("lossy: register %q: nil factory", name)
	}
	return RegisterFamily(legacyFamily{name: name, kind: KindEBLC, factory: factory})
}

// RegisterVariant registers a non-canonical configuration of an
// existing compressor (e.g. "szx-artifact"): it resolves through New
// like any other name but is excluded from Names and Families, so
// suite sweeps iterate only canonical compressors.
//
// Deprecated: new variants should implement Family and call
// RegisterFamilyVariant.
func RegisterVariant(name string, factory func() Compressor) error {
	if name == "" {
		return fmt.Errorf("lossy: register: empty name")
	}
	if factory == nil {
		return fmt.Errorf("lossy: register %q: nil factory", name)
	}
	return RegisterFamilyVariant(legacyFamily{name: name, kind: KindEBLC, factory: factory})
}

// MustRegister registers name or panics — the init-time form of
// Register for built-in compressor packages.
func MustRegister(name string, factory func() Compressor) {
	if err := Register(name, factory); err != nil {
		panic(err)
	}
}

// MustRegisterVariant is the init-time form of RegisterVariant.
func MustRegisterVariant(name string, factory func() Compressor) {
	if err := RegisterVariant(name, factory); err != nil {
		panic(err)
	}
}

// New constructs the compressor registered under name at its family's
// default setting. This is the resolution path frame decoding uses:
// payloads are self-describing, so the default-setting Decompress
// decodes every Setting of the family.
func New(name string) (Compressor, error) {
	f, err := FamilyByName(name)
	if err != nil {
		return nil, err
	}
	return f.Compressor(Setting{})
}

// Names lists the canonical registered KindEBLC compressor names in
// sorted order (for the built-ins that is the paper's Table I order:
// sz2, sz3, szx, zfp). Variant registrations and non-EBLC families
// are omitted — use Families for the full cross-kind listing.
func Names() []string {
	familyMu.RLock()
	defer familyMu.RUnlock()
	out := make([]string, 0, len(familyRegistry))
	for name, f := range familyRegistry {
		if !familyVariant[name] && f.Kind() == KindEBLC {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
