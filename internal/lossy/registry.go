package lossy

import (
	"fmt"
	"sort"
	"sync"
)

// The compressor registry maps names to constructors. Built-in
// compressors self-register from their packages' init functions
// (sz2, sz3, szx, zfp), and downstream code can plug additional
// error-bounded compressors in through Register without touching any
// internal package: a frame recording the registered name decompresses
// through the same lookup the built-ins use.
var (
	registryMu sync.RWMutex
	registry   = map[string]func() Compressor{}
	variants   = map[string]bool{}
)

// Register makes factory available to New under name. Registering an
// empty name, a nil factory or a name that is already taken is an
// error; a process registers each compressor exactly once (typically
// from init).
func Register(name string, factory func() Compressor) error {
	return register(name, factory, false)
}

// RegisterVariant registers a non-canonical configuration of an
// existing compressor (e.g. "szx-artifact"): it resolves through New
// like any other name but is excluded from Names, so suite sweeps
// iterate only canonical compressors.
func RegisterVariant(name string, factory func() Compressor) error {
	return register(name, factory, true)
}

func register(name string, factory func() Compressor, variant bool) error {
	if name == "" {
		return fmt.Errorf("lossy: register: empty name")
	}
	if factory == nil {
		return fmt.Errorf("lossy: register %q: nil factory", name)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("lossy: register %q: already registered", name)
	}
	registry[name] = factory
	variants[name] = variant
	return nil
}

// mustRegister is the init-time form of Register/RegisterVariant.
func mustRegister(name string, factory func() Compressor, variant bool) {
	if err := register(name, factory, variant); err != nil {
		panic(err)
	}
}

// MustRegister registers name or panics — the init-time form of
// Register for built-in compressor packages.
func MustRegister(name string, factory func() Compressor) {
	mustRegister(name, factory, false)
}

// MustRegisterVariant is the init-time form of RegisterVariant.
func MustRegisterVariant(name string, factory func() Compressor) {
	mustRegister(name, factory, true)
}

// New constructs the compressor registered under name.
func New(name string) (Compressor, error) {
	registryMu.RLock()
	factory, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("lossy: unknown compressor %q", name)
	}
	return factory(), nil
}

// Names lists the canonical registered compressor names in sorted
// order (for the built-ins that is the paper's Table I order: sz2,
// sz3, szx, zfp). Variant registrations are omitted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		if !variants[name] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
