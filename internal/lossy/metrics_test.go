package lossy

import (
	"math"
	"testing"
)

func TestEvaluateExact(t *testing.T) {
	a := []float32{1, 2, 3}
	m := Evaluate(a, a)
	if m.MaxAbsErr != 0 || m.RMSE != 0 || !math.IsInf(m.PSNR, 1) {
		t.Fatalf("exact metrics %+v", m)
	}
	if m.Range != 2 {
		t.Fatalf("range %v", m.Range)
	}
}

func TestEvaluateKnownValues(t *testing.T) {
	orig := []float32{0, 1}
	recon := []float32{0.1, 0.9}
	m := Evaluate(orig, recon)
	if math.Abs(m.MaxAbsErr-0.1) > 1e-7 {
		t.Fatalf("max err %v", m.MaxAbsErr)
	}
	if math.Abs(m.RMSE-0.1) > 1e-7 {
		t.Fatalf("rmse %v", m.RMSE)
	}
	if math.Abs(m.NRMSE-0.1) > 1e-7 {
		t.Fatalf("nrmse %v", m.NRMSE)
	}
	if math.Abs(m.PSNR-20) > 1e-5 { // 20·log10(1/0.1)
		t.Fatalf("psnr %v", m.PSNR)
	}
}

func TestEvaluateDegenerate(t *testing.T) {
	if m := Evaluate([]float32{1}, []float32{1, 2}); !math.IsInf(m.MaxAbsErr, 1) {
		t.Fatal("length mismatch should be Inf")
	}
	if m := Evaluate(nil, nil); !math.IsInf(m.MaxAbsErr, 1) {
		t.Fatal("empty should be Inf")
	}
	// Constant input: range 0, PSNR undefined (0), NRMSE 0.
	m := Evaluate([]float32{5, 5}, []float32{5.5, 4.5})
	if m.Range != 0 || m.NRMSE != 0 || m.PSNR != 0 {
		t.Fatalf("constant metrics %+v", m)
	}
}

// TestPSNRTracksBound: tightening the bound by 10× should raise PSNR by
// ≈20 dB for a quantizing compressor. Verified against SZ2 in that
// package's tests; here we verify the metric arithmetic itself.
func TestPSNRTracksErrorScale(t *testing.T) {
	orig := make([]float32, 1000)
	reconA := make([]float32, 1000)
	reconB := make([]float32, 1000)
	for i := range orig {
		orig[i] = float32(i) / 1000
		reconA[i] = orig[i] + 0.01
		reconB[i] = orig[i] + 0.001
	}
	a := Evaluate(orig, reconA)
	b := Evaluate(orig, reconB)
	if diff := b.PSNR - a.PSNR; math.Abs(diff-20) > 0.5 {
		t.Fatalf("PSNR delta %v, want ≈20 dB", diff)
	}
}
