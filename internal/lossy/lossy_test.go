package lossy

import (
	"math"
	"testing"
)

func TestResolveAbs(t *testing.T) {
	eb, err := AbsBound(0.25).Resolve([]float32{1, 2, 3})
	if err != nil || eb != 0.25 {
		t.Fatalf("got %v, %v", eb, err)
	}
}

func TestResolveRel(t *testing.T) {
	eb, err := RelBound(0.01).Resolve([]float32{-1, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eb-0.04) > 1e-12 {
		t.Fatalf("eb = %v, want 0.04", eb)
	}
}

func TestResolveRelConstantData(t *testing.T) {
	eb, err := RelBound(0.01).Resolve([]float32{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if eb != 0.05 {
		t.Fatalf("constant data eb = %v, want 0.05", eb)
	}
	eb, err = RelBound(0.01).Resolve([]float32{0, 0})
	if err != nil || eb != 0.01 {
		t.Fatalf("all-zero eb = %v err=%v", eb, err)
	}
}

func TestResolveInvalid(t *testing.T) {
	if _, err := (Params{Mode: Rel, Bound: 0}).Resolve(nil); err == nil {
		t.Fatal("expected error for zero bound")
	}
	if _, err := (Params{Mode: Rel, Bound: math.NaN()}).Resolve(nil); err == nil {
		t.Fatal("expected error for NaN bound")
	}
	if _, err := (Params{Mode: 0, Bound: 1}).Resolve(nil); err == nil {
		t.Fatal("expected error for missing mode")
	}
}

func TestModeString(t *testing.T) {
	if Abs.String() != "ABS" || Rel.String() != "REL" {
		t.Fatal("mode strings")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Fatal("unknown mode string")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	buf := WriteHeader("TEST", 12345, 0.0625)
	buf = append(buf, 0xaa, 0xbb)
	count, eb, rest, err := ReadHeader("TEST", buf)
	if err != nil {
		t.Fatal(err)
	}
	if count != 12345 || eb != 0.0625 {
		t.Fatalf("count=%d eb=%v", count, eb)
	}
	if len(rest) != 2 || rest[0] != 0xaa {
		t.Fatalf("rest = %x", rest)
	}
}

func TestHeaderErrors(t *testing.T) {
	buf := WriteHeader("ABCD", 1, 1)
	if _, _, _, err := ReadHeader("WXYZ", buf); err == nil {
		t.Fatal("expected bad-magic error")
	}
	if _, _, _, err := ReadHeader("ABCD", buf[:3]); err == nil {
		t.Fatal("expected truncation error")
	}
	bad := append([]byte(nil), buf...)
	bad[4] = 99 // version
	if _, _, _, err := ReadHeader("ABCD", bad); err == nil {
		t.Fatal("expected version error")
	}
	if _, _, _, err := ReadHeader("ABCD", buf[:6]); err == nil {
		t.Fatal("expected truncated header error")
	}
}

func TestMaxAbsError(t *testing.T) {
	if e := MaxAbsError([]float32{1, 2}, []float32{1.5, 2}); e != 0.5 {
		t.Fatalf("e = %v", e)
	}
	if e := MaxAbsError([]float32{1}, []float32{1, 2}); !math.IsInf(e, 1) {
		t.Fatalf("length mismatch should be +Inf, got %v", e)
	}
}
