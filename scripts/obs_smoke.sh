#!/usr/bin/env bash
# Observability smoke: run a real fedszserver + fedszclient federation
# over TCP loopback with the metrics listener on, freeze one client so
# the straggler deadline produces a genuine fedsz_drops_total series,
# then scrape /metrics and /rounds live and assert the key series the
# acceptance criteria name: bytes-on-wire both directions, per-family
# compression ratio, per-reason drops, round commit latency, and round
# spans as JSON.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
server_pid="" c0="" c1="" victim=""
cleanup() {
  kill -9 $server_pid $c0 $c1 $victim 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/fedszserver" ./cmd/fedszserver
go build -o "$tmp/fedszclient" ./cmd/fedszclient

addr=127.0.0.1:19390
maddr=127.0.0.1:19391

# A large round budget keeps the server (and its metrics listener)
# alive for the whole scrape loop; cleanup kills it once the
# assertions pass.
"$tmp/fedszserver" -addr "$addr" -metrics-addr "$maddr" \
  -min-clients 3 -rounds 1000 -deadline 2s -log-format json \
  >"$tmp/server.log" 2>&1 &
server_pid=$!

"$tmp/fedszclient" -addr "$addr" -shard 0 -shards 3 >"$tmp/c0.log" 2>&1 &
c0=$!
"$tmp/fedszclient" -addr "$addr" -shard 1 -shards 3 >"$tmp/c1.log" 2>&1 &
c1=$!
"$tmp/fedszclient" -addr "$addr" -shard 2 -shards 3 -retries 0 >"$tmp/victim.log" 2>&1 &
victim=$!
disown -a # keep bash from reporting the cleanup kills

# Wait for the first gathered round via the readiness probe (no blind
# sleeps), then freeze the third client mid-round: the 2s straggler
# deadline cuts it, producing a real drop series.
ready_deadline=$((SECONDS + 60))
until curl -sf "http://$maddr/readyz" >/dev/null; do
  if [ "$SECONDS" -ge "$ready_deadline" ]; then
    echo "obs smoke: FAIL — /readyz never flipped" >&2
    tail -n 30 "$tmp/server.log" >&2 || true
    exit 1
  fi
  sleep 0.5
done
kill -STOP "$victim" 2>/dev/null || true

need=(
  'fedsz_transport_bytes_total\{dir="rx"\} [1-9]'
  'fedsz_transport_bytes_total\{dir="tx"\} [1-9]'
  'fedsz_core_ratio_count\{family="sz2",dir="decode"\} [1-9]'
  'fedsz_drops_total\{reason="[a-z]+"\} [1-9]'
  'fedsz_round_commit_seconds_count [1-9]'
  'fedsz_rounds_committed_total [1-9]'
)
missing="metrics endpoint unreachable"
deadline=$((SECONDS + 90))
while :; do
  if curl -sf "http://$maddr/metrics" -o "$tmp/metrics.txt"; then
    ok=1
    for pat in "${need[@]}"; do
      if ! grep -Eq "$pat" "$tmp/metrics.txt"; then
        ok=0 missing="$pat"
        break
      fi
    done
    [ "$ok" = 1 ] && break
  fi
  if [ "$SECONDS" -ge "$deadline" ]; then
    echo "obs smoke: FAIL — /metrics never satisfied: $missing" >&2
    echo "--- last scrape ---" >&2
    cat "$tmp/metrics.txt" 2>/dev/null >&2 || true
    echo "--- server log tail ---" >&2
    tail -n 30 "$tmp/server.log" >&2 || true
    exit 1
  fi
  sleep 1
done
echo "obs smoke: /metrics OK ($(wc -l <"$tmp/metrics.txt") lines)"

curl -sf "http://$maddr/rounds?n=8" -o "$tmp/rounds.json"
for frag in '"tier": "coordinator"' '"total_ns"' '"bytes_up"' '"outcome": "committed"'; do
  if ! grep -Fq "$frag" "$tmp/rounds.json"; then
    echo "obs smoke: FAIL — /rounds missing $frag" >&2
    cat "$tmp/rounds.json" >&2
    exit 1
  fi
done
echo "obs smoke: /rounds OK ($(grep -Fo '"round"' "$tmp/rounds.json" | wc -l) spans)"

# (curl to a file: grep -q would close the pipe early and fail the
# whole pipeline under pipefail.)
curl -sf "http://$maddr/debug/vars" -o "$tmp/vars.json"
grep -Fq '"fedsz_metrics"' "$tmp/vars.json" || {
  echo "obs smoke: FAIL — /debug/vars missing fedsz_metrics expvar" >&2
  exit 1
}
echo "obs smoke: PASS"
