#!/usr/bin/env bash
# Trace smoke: run a real 2-edge federation over TCP loopback with the
# coordinator's observability listener on, wait for readiness via
# /readyz, then assert the /rounds/tree endpoint assembles the
# federation-wide round tree — both regions grafted as subtrees, a
# non-empty critical path, and the path's total duration within 10% of
# the measured round wall time. Finally exercises the fedsztop
# dashboard headlessly (-once).
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
pids=()
cleanup() {
  kill -9 "${pids[@]}" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/fedszserver" ./cmd/fedszserver
go build -o "$tmp/fedszedge" ./cmd/fedszedge
go build -o "$tmp/fedszclient" ./cmd/fedszclient
go build -o "$tmp/fedsztop" ./cmd/fedsztop

addr=127.0.0.1:19490
maddr=127.0.0.1:19491
e0=127.0.0.1:19492
e1=127.0.0.1:19493

# A large round budget keeps the federation (and the coordinator's
# observability listener) alive for the whole assertion loop.
"$tmp/fedszserver" -addr "$addr" -metrics-addr "$maddr" \
  -min-clients 2 -rounds 1000 -checksum -log-format json \
  >"$tmp/server.log" 2>&1 &
pids+=($!)

# Edges dial upstream once at startup (no retry), so wait for the
# coordinator's listener before launching them.
deadline=$((SECONDS + 30))
until grep -q '"msg":"listening"' "$tmp/server.log" 2>/dev/null; do
  if [ "$SECONDS" -ge "$deadline" ]; then
    echo "trace smoke: FAIL — coordinator never started listening" >&2
    cat "$tmp/server.log" >&2 || true
    exit 1
  fi
  sleep 0.2
done

"$tmp/fedszedge" -listen "$e0" -upstream "$addr" -min-clients 2 -checksum \
  >"$tmp/e0.log" 2>&1 &
pids+=($!)
"$tmp/fedszedge" -listen "$e1" -upstream "$addr" -min-clients 2 -checksum \
  >"$tmp/e1.log" 2>&1 &
pids+=($!)
for i in 0 1 2 3; do
  edge=$e0
  [ $((i % 2)) = 1 ] && edge=$e1
  "$tmp/fedszclient" -addr "$edge" -shard "$i" -shards 4 -checksum \
    >"$tmp/c$i.log" 2>&1 &
  pids+=($!)
done
disown -a # keep bash from reporting the cleanup kills

# Readiness probe instead of blind sleeps: /readyz flips to 200 once
# the coordinator gathers its first round.
deadline=$((SECONDS + 90))
until curl -sf "http://$maddr/readyz" >/dev/null; do
  if [ "$SECONDS" -ge "$deadline" ]; then
    echo "trace smoke: FAIL — coordinator never became ready" >&2
    tail -n 30 "$tmp/server.log" "$tmp/e0.log" "$tmp/e1.log" >&2 || true
    exit 1
  fi
  sleep 1
done
echo "trace smoke: /readyz OK"

# The newest assembled round must show ≥2 grafted regions and a
# non-empty critical path whose total fits the round's wall time
# within 10%. Loopback rounds are a few ms, so an occasional
# scheduler stall can break the fit on one round — retry across
# rounds until one fits.
regions=0 wall="" crit=""
deadline=$((SECONDS + 90))
while :; do
  if curl -sf "http://$maddr/rounds/tree?n=1" -o "$tmp/tree.json"; then
    regions=$(grep -oE '"id": "edge-[0-9]+"' "$tmp/tree.json" | sort -u | wc -l)
    wall=$(grep -oE '"wall_ns": [0-9]+' "$tmp/tree.json" | head -1 | awk '{print $2}')
    crit=$(grep -oE '"critical_ns": [0-9]+' "$tmp/tree.json" | head -1 | awk '{print $2}')
    path_segs=$(grep -c '"phase":' "$tmp/tree.json" || true)
    if [ "$regions" -ge 2 ] && [ "$path_segs" -ge 1 ] &&
      [ -n "$wall" ] && [ -n "$crit" ] && [ "$wall" -gt 0 ] &&
      [ $((crit * 10)) -ge $((wall * 9)) ] && [ $((crit * 10)) -le $((wall * 11)) ]; then
      break
    fi
  fi
  if [ "$SECONDS" -ge "$deadline" ]; then
    echo "trace smoke: FAIL — /rounds/tree never satisfied (regions=$regions wall=${wall:-?} critical=${crit:-?})" >&2
    cat "$tmp/tree.json" 2>/dev/null >&2 || true
    echo "--- server log tail ---" >&2
    tail -n 30 "$tmp/server.log" >&2 || true
    exit 1
  fi
  sleep 1
done
echo "trace smoke: /rounds/tree OK (regions=$regions critical=${crit}ns wall=${wall}ns)"

# The dashboard renders one headless snapshot from the same endpoint.
"$tmp/fedsztop" -addrs "$maddr" -once >"$tmp/top.txt"
if ! grep -q "round" "$tmp/top.txt" || ! grep -q "critical" "$tmp/top.txt"; then
  echo "trace smoke: FAIL — fedsztop -once rendered no round/critical lines" >&2
  cat "$tmp/top.txt" >&2
  exit 1
fi
echo "trace smoke: fedsztop OK"
echo "trace smoke: PASS"
