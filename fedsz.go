// Package fedsz is the public API of FedSZ-Go, a from-scratch Go
// reproduction of "FedSZ: Leveraging Error-Bounded Lossy Compression
// for Federated Learning Communications" (ICDCS 2024).
//
// FedSZ shrinks federated-learning client updates by partitioning a
// model state dict into large weight tensors — compressed with an
// error-bounded lossy compressor (SZ2 by default) under a relative
// error bound — and small metadata entries, compressed losslessly
// (blosc-lz by default), framed into one self-describing bitstream:
//
//	sd := fedsz.BuildStateDict(fedsz.MobileNetV2(1), 42)
//	buf, stats, err := fedsz.Compress(sd, fedsz.WithRelBound(1e-2))
//	...
//	restored, err := fedsz.Decompress(buf)
//
// # Streaming
//
// Encoder and Decoder are the streaming counterparts of Compress and
// Decompress: an Encoder pushes each tensor's frame section onto its
// io.Writer while the next tensor is still compressing, and a Decoder
// decompresses sections as they arrive, so over a network compression
// time hides behind transmission time instead of preceding it (the
// system-level composition of the paper's Eqn. 1). Frames are
// self-delimiting — several may share a stream — and an Encoder
// writing to a buffer emits bytes identical to Compress, so the two
// APIs mix freely:
//
//	enc, err := fedsz.NewEncoder(conn, fedsz.WithRelBound(1e-2))
//	stats, err := enc.Encode(update)
//	...
//	restored, err := fedsz.NewDecoder(conn).Decode()
//
// # Compressor families
//
// Every compression technique the system knows — the four
// error-bounded lossy compressors (sz2/sz3/szx/zfp), top-k and rand-k
// sparsification, QSGD-style quantization, and the gradient-aware
// predictor — implements one CompressorFamily contract and lives in a
// single typed registry. A family exposes a parameter grid of
// FamilySetting values (sparsification fractions, quantizer widths;
// the zero Setting is the bound-guaranteed default) and constructs a
// concrete compressor per setting. RegisterFamily plugs new families
// in; Families lists them; frames recording a family's name decode
// anywhere the registration ran. RegisterLossy remains as a shim for
// single-compressor families, and RegisterLossless handles the
// metadata codecs.
//
// # Adaptive compression
//
// The paper picks its compressor and error bound by offline grid
// search; WithAdaptive replaces that with a runtime control plane. An
// AdaptivePolicy probes candidate (family, grid setting, bound,
// lossless backend) tuples on sampled tensor sections — in the
// background, off the encode path — caches per-tensor plans with
// periodic re-probing, schedules the round-level bound from
// convergence signals and weighs uplink bandwidth through the paper's
// Eqn. 1:
//
//	policy, err := fedsz.NewAdaptivePolicy(fedsz.AdaptiveConfig{})
//	buf, stats, err := fedsz.Compress(sd, fedsz.WithAdaptive(policy))
//
// Adaptive frames are self-describing like any other — Decompress and
// Decoder read them unchanged.
//
// # Error feedback
//
// The sparsifying and quantizing families have grid settings that do
// not honour the error bound (a fixed sparsity budget keeps its
// budget, not the bound). WithErrorFeedback pairs such settings with
// a per-client residual accumulator: whatever one frame's compression
// dropped is added back into the next frame's tensors before
// compression, so the signal arrives late rather than never. One
// ErrorFeedback per logical client — NewResidualStore manages a
// keyed set of them server- or fleet-side, with Withdraw wired to
// the orchestrator's OnDrop hook.
//
// # Concurrency
//
// Per-tensor compression is embarrassingly parallel, and the pipeline
// exploits that: Compress fans the per-tensor lossy passes and the
// independent lossless metadata pass across a worker pool sized by
// WithParallelism (default runtime.GOMAXPROCS(0)), and Decompress
// mirrors the fan-out. Sections are assembled in deterministic entry
// order, so the bitstream is byte-identical at every parallelism level;
// only wall-clock compression time (the paper's tC) changes.
//
// Everything the API hands out is safe for concurrent use once
// constructed: a Codec from NewCodec may encode updates from many
// client goroutines at once, and Compress/Decompress may be called
// freely from multiple goroutines. Mutable values the caller owns
// (StateDict, Tensor) are not synchronized — do not mutate them during
// a concurrent encode.
//
// # Orchestration
//
// The orchestration layer scales the federation past the paper's
// four lock-step clients: NewCoordinator coordinates dynamic
// join/leave, per-round sampling with over-provisioning, straggler
// deadlines, and two aggregation modes (ModeSync FedAvg rounds,
// ModeAsync FedBuff-style buffering), all folding decoded tensor
// entries into the streaming sharded Aggregator as they come off each
// connection — byte-identical to sequential FedAvg, without holding
// every client's decoded update. RunOrchestratedSim drives it on a
// virtual clock over heterogeneous client populations (PaperMix);
// cmd/fedszserver runs it over TCP.
//
// The packages under internal/ implement the full system: the four
// error-bounded compressors (SZ2, SZ3, SZx, ZFP), the lossless suite,
// the model and training substrates, the FedAvg runtime with simulated
// and real (TCP) transports plus the orchestration subsystem, and the
// benchmark harness that regenerates every table and figure of the
// paper (see DESIGN.md and cmd/fedszbench).
package fedsz

import (
	"bufio"
	"io"
	"time"

	"fedsz/internal/adapt"
	"fedsz/internal/baseline"
	"fedsz/internal/core"
	"fedsz/internal/dataset"
	"fedsz/internal/fl"
	"fedsz/internal/hier"
	"fedsz/internal/lossless"
	"fedsz/internal/lossy"
	"fedsz/internal/model"
	"fedsz/internal/netsim"
	"fedsz/internal/orchestrator"
	"fedsz/internal/tensor"
	"fedsz/internal/transport"
)

// Re-exported types. Aliases keep the internal packages private while
// letting downstream code name every value the API returns.
type (
	// StateDict is an insertion-ordered model state dictionary.
	StateDict = model.StateDict
	// Entry is one state-dict item.
	Entry = model.Entry
	// Tensor is a dense float32 tensor.
	Tensor = tensor.Tensor
	// Arch is an architecture specification.
	Arch = model.Arch
	// Stats reports one compression call's accounting.
	Stats = core.Stats
	// Decision evaluates the paper's Eqn. 1 compress-or-not rule.
	Decision = core.Decision
	// Codec converts state dicts to and from wire bytes.
	Codec = fl.Codec
	// UpdateStats accounts for one encoded client update.
	UpdateStats = fl.UpdateStats
	// SimConfig parameterizes an in-process federated simulation.
	SimConfig = fl.SimConfig
	// SimResult is a federated simulation trace.
	SimResult = fl.SimResult
	// Link models a constrained network link.
	Link = netsim.Link
	// DatasetSpec describes a synthetic dataset family.
	DatasetSpec = dataset.Spec
)

// PlainCodec is the uncompressed-update baseline codec.
type PlainCodec = fl.PlainCodec

// Baseline compression techniques (paper §III-C survey) and the §VIII
// "last-step" composition utilities.
type (
	// TopK is magnitude-based gradient sparsification.
	TopK = baseline.TopK
	// QSGD is stochastic uniform quantization.
	QSGD = baseline.QSGD
	// SparseCodec serializes sparsified updates compactly.
	SparseCodec = baseline.SparseCodec
)

// NewBaselineCodec stacks a sparsifier/quantizer over an inner codec
// (nil = plain serialization). Stack over NewCodec(...) to reproduce
// the paper's §VIII composition.
//
// Deprecated: the sparsification and quantization techniques are now
// first-class compressor families ("topk", "randk", "qsgd") in the
// typed registry — select them with WithCompressor, restrict an
// adaptive policy to them via AdaptiveConfig.Families, and pair their
// unbounded settings with WithErrorFeedback. NewBaselineCodec remains
// for the paper's §VIII stacked-composition experiments and produces
// byte-identical output to previous releases.
func NewBaselineCodec(t baseline.Transform, inner Codec) Codec {
	return baseline.NewCodec(t, inner)
}

// NewDeltaCodec transmits client−global deltas through the inner
// codec. The federation runtimes keep its reference in sync.
func NewDeltaCodec(inner Codec) Codec { return fl.NewDeltaCodec(inner) }

// Default pipeline parameters (paper §VII-A recommendation).
const (
	// DefaultBound is the recommended relative error bound (1e-2).
	DefaultBound = core.DefaultBound
	// DefaultThreshold is Algorithm 1's partition threshold.
	DefaultThreshold = core.DefaultThreshold
)

// Option customizes the FedSZ pipeline.
type Option func(*core.Config)

// WithCompressor selects the lossy compressor: "sz2" (default), "sz3",
// "szx", "szx-artifact" or "zfp".
func WithCompressor(name string) Option {
	return func(c *core.Config) { c.Lossy = name }
}

// WithRelBound sets a range-relative error bound (the paper's REL
// mode; 1e-2 is the recommended setting).
func WithRelBound(bound float64) Option {
	return func(c *core.Config) { c.Bound = lossy.RelBound(bound) }
}

// WithAbsBound sets an absolute error bound.
func WithAbsBound(bound float64) Option {
	return func(c *core.Config) { c.Bound = lossy.AbsBound(bound) }
}

// WithThreshold overrides the Algorithm 1 partition threshold
// (elements).
func WithThreshold(elements int) Option {
	return func(c *core.Config) { c.Threshold = elements }
}

// WithLossless selects the metadata codec: "blosclz" (default),
// "zlib", "gzip", "zstdlike" or "xzlike".
func WithLossless(name string) Option {
	return func(c *core.Config) { c.Lossless = name }
}

// WithParallelism caps the worker pool that fans per-tensor compression
// (and the independent metadata pass) across cores. The default, 0,
// selects runtime.GOMAXPROCS(0); 1 forces the serial path. The output
// bitstream is byte-identical at every setting, so the knob trades only
// wall-clock tC (paper Eqn. 1) against CPU occupancy.
func WithParallelism(n int) Option {
	return func(c *core.Config) { c.Parallelism = n }
}

// WithChecksum emits checked frames: a CRC32C trailer after the header
// and after every tensor section, verified before any data is handed
// to the aggregation path, so a bit flip in transit surfaces as a
// typed corrupt-frame error instead of silently poisoning the global
// model. Checked frames are self-describing — receivers need no
// matching option — but legacy decoders reject them, so enable it
// fleet-wide. Costs 4 bytes per section plus one CRC pass.
func WithChecksum() Option {
	return func(c *core.Config) { c.Checksum = true }
}

// Adaptive compression control plane: the runtime replacement for the
// paper's offline grid search. An AdaptivePolicy probes candidate
// (compressor, bound, lossless backend) triples on sampled tensor
// sections, caches a per-tensor plan with periodic re-probing,
// schedules the round-level error bound from convergence signals
// (tightening it as update norms decay) and folds the client's uplink
// bandwidth into each choice through the paper's Eqn. 1. Plug one into
// any pipeline entry point with WithAdaptive; frames it shapes decode
// through the ordinary self-describing path on any receiver.
type (
	// AdaptivePolicy is the adaptive control plane: a concurrent-safe
	// per-tensor plan cache plus round-bound scheduler. It implements
	// the orchestrator's BoundScheduler, so the same value can drive a
	// client's codec and a coordinator's bound broadcast.
	AdaptivePolicy = adapt.Policy
	// AdaptiveConfig parameterizes NewAdaptivePolicy; its zero value
	// adapts over every registered compressor and lossless codec at
	// the paper's recommended base bound.
	AdaptiveConfig = adapt.Config
	// AdaptivePlan is one cached per-tensor plan snapshot
	// (AdaptivePolicy.Plans), for diagnostics and tooling.
	AdaptivePlan = adapt.PlanInfo
	// BoundScheduler derives the next round's error bound from
	// convergence signals; OrchestratorConfig.Bound accepts one and
	// AdaptivePolicy implements it.
	BoundScheduler = orchestrator.BoundScheduler
)

// NewAdaptivePolicy validates cfg against the registries and returns a
// ready policy.
func NewAdaptivePolicy(cfg AdaptiveConfig) (*AdaptivePolicy, error) {
	return adapt.NewPolicy(cfg)
}

// WithAdaptive attaches an adaptive policy to the pipeline: every
// lossy-path tensor's compressor and error bound come from the
// policy's cached plans instead of the static WithCompressor/
// WithRelBound configuration (which remains the fallback). One policy
// may be shared across encoders and codecs — its plans then serve all
// of them. A nil policy leaves the pipeline static.
func WithAdaptive(p *AdaptivePolicy) Option {
	return func(c *core.Config) {
		if p != nil {
			c.Selector = p
		}
	}
}

func buildConfig(opts []Option) core.Config {
	var cfg core.Config
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// Compress encodes sd into a FedSZ bitstream.
func Compress(sd *StateDict, opts ...Option) ([]byte, Stats, error) {
	p, err := core.NewPipeline(buildConfig(opts))
	if err != nil {
		return nil, Stats{}, err
	}
	return p.Compress(sd)
}

// Decompress decodes a FedSZ bitstream. No configuration is needed:
// the bitstream is self-describing.
func Decompress(buf []byte) (*StateDict, error) {
	return core.Decompress(buf)
}

// An Encoder streams FedSZ frames to an io.Writer. Each Encode call
// emits one self-describing frame incrementally: the header goes out
// immediately and every tensor's section follows as soon as that
// tensor finishes compressing, so when w is a network connection,
// compression time (the paper's tC in Eqn. 1) hides behind
// transmission time instead of preceding it. The bytes written are
// exactly what Compress would return for the same options, so either
// end of a connection may mix the buffer and streaming APIs freely.
//
// An Encoder is safe for use from one goroutine at a time (frames
// would interleave otherwise); construct one Encoder per stream.
type Encoder struct {
	p *core.Pipeline
	w io.Writer
}

// NewEncoder returns an Encoder writing frames to w, configured with
// the same options Compress accepts.
func NewEncoder(w io.Writer, opts ...Option) (*Encoder, error) {
	p, err := core.NewPipeline(buildConfig(opts))
	if err != nil {
		return nil, err
	}
	return &Encoder{p: p, w: w}, nil
}

// Encode compresses sd and streams its frame to the writer. The
// caller must not mutate sd while the call is in flight.
func (e *Encoder) Encode(sd *StateDict) (Stats, error) {
	return e.p.CompressTo(e.w, sd)
}

// A Decoder reads FedSZ frames from an io.Reader, decompressing each
// tensor as its section arrives so decode work overlaps reception. No
// configuration is needed: frames are self-describing, and compressors
// plugged in through RegisterLossy/RegisterLossless resolve by the
// name recorded in the frame.
//
// The Decoder reads exactly one frame per Decode call (no readahead
// beyond its own buffering), so successive frames — or other protocol
// traffic parsed through the same Decoder-owned reader — may follow on
// one stream. Decode returns io.EOF once the stream is exhausted.
type Decoder struct {
	r io.Reader
}

// NewDecoder returns a Decoder reading frames from r. If r does not
// implement io.ByteReader it is wrapped in a buffered reader, which
// may read ahead of the current frame; pass a *bufio.Reader you own to
// interleave other reads on the same stream.
func NewDecoder(r io.Reader) *Decoder {
	if _, ok := r.(io.ByteReader); !ok {
		r = bufio.NewReader(r)
	}
	return &Decoder{r: r}
}

// Decode reads and decompresses the next frame from the stream.
func (d *Decoder) Decode() (*StateDict, error) {
	return core.DecompressFrom(d.r, 0)
}

// NewCodec returns a federated-learning update codec backed by the
// FedSZ pipeline, for use with RunSim or the transport server.
func NewCodec(opts ...Option) (Codec, error) {
	return fl.NewFedSZCodec(buildConfig(opts))
}

// Compressors lists the available lossy compressor names: the
// built-in suite plus anything plugged in through RegisterLossy.
func Compressors() []string { return core.LossyNames() }

// LosslessCodecs lists the available lossless codec names: the
// built-in suite plus anything plugged in through RegisterLossless.
func LosslessCodecs() []string { return lossless.Names() }

// The codec registry. The five lossless codecs and four error-bounded
// compressors of the paper's Tables I-II self-register at init; the
// two Register functions let downstream code plug additional
// implementations in — e.g. a gradient-aware error-bounded compressor
// — without touching internal packages. A registered name works
// everywhere a built-in name does: WithCompressor/WithLossless select
// it, and Decompress/Decoder resolve it from the name recorded in the
// self-describing frame.

// LossyCompressor is the error-bounded lossy compressor contract: 1-D
// float32 in, self-describing buffer out, every value reproduced
// within the absolute bound resolved from LossyParams.
type LossyCompressor = lossy.Compressor

// LossyParams is the error-bound specification passed to a
// LossyCompressor (absolute or range-relative mode).
type LossyParams = lossy.Params

// LosslessCodec is the lossless byte-compressor contract used for the
// metadata section.
type LosslessCodec = lossless.Codec

// RegisterLossy makes factory available under name to WithCompressor
// and to frame decoding. Registering a duplicate or empty name is an
// error; register once, typically from init.
func RegisterLossy(name string, factory func() LossyCompressor) error {
	return lossy.Register(name, factory)
}

// RegisterLossless is RegisterLossy's counterpart for metadata codecs,
// feeding WithLossless and frame decoding.
func RegisterLossless(name string, factory func() LosslessCodec) error {
	return lossless.Register(name, factory)
}

// The compressor-family registry. A CompressorFamily generalizes a
// single LossyCompressor to a technique with a parameter grid: the
// error-bounded Table I compressors expose just their default, while
// the sparsifying ("topk", "randk") and quantizing ("qsgd") families
// expose fraction/width settings — some of which trade the error-bound
// guarantee for a fixed byte budget (pair those with WithErrorFeedback).
// Every built-in family self-registers; the adaptive control plane's
// candidate grid spans whatever is registered.

// CompressorFamily is the registry contract one compression technique
// implements: a name (recorded in frames), a kind, a parameter grid,
// a per-setting bound guarantee, and a compressor constructor. See
// the package documentation's custom-family example.
type CompressorFamily = lossy.Family

// FamilySetting is one point on a family's parameter grid: a sparsity
// fraction and/or a quantizer bit width. The zero value is the
// family's bound-guaranteed default.
type FamilySetting = lossy.Setting

// Family kind labels, reported by CompressorFamily.Kind.
const (
	// KindEBLC marks error-bounded lossy compressors (Table I).
	KindEBLC = lossy.KindEBLC
	// KindSparse marks sparsifying families (topk, randk).
	KindSparse = lossy.KindSparse
	// KindQuant marks quantizing families (qsgd).
	KindQuant = lossy.KindQuant
	// KindPred marks prediction-based gradient-aware families (pred).
	KindPred = lossy.KindPred
)

// RegisterFamily adds f to the registry: WithCompressor and
// AdaptiveConfig.Families select it by name, the adaptive control
// plane probes its grid, and frames recording its name decode
// anywhere the registration ran. Registering a duplicate or empty
// name is an error; register once, typically from init.
func RegisterFamily(f CompressorFamily) error {
	return lossy.RegisterFamily(f)
}

// FamilyByName resolves a registered family — the typed counterpart
// of the name strings in frames, Families and AdaptiveConfig.
func FamilyByName(name string) (CompressorFamily, error) {
	return lossy.FamilyByName(name)
}

// Families lists every canonical registered compressor family across
// all kinds: the Table I suite, "topk", "randk", "qsgd", "pred", and
// anything plugged in through RegisterFamily. Compressors remains the
// EBLC-only list.
func Families() []string { return core.FamilyNames() }

// FamilyGrid returns a family's parameter grid (at least the zero
// default setting), for tooling that enumerates candidates the way
// the adaptive control plane does.
func FamilyGrid(f CompressorFamily) []FamilySetting { return lossy.GridOf(f) }

// Error feedback: per-client residual state that re-injects what one
// frame's compression dropped into the next frame's tensors. It is
// what keeps the unbounded family settings (fractional top-k/rand-k,
// fixed-width QSGD) convergent — the dropped signal arrives late
// instead of never.

// ErrorFeedback accumulates one client's per-tensor residuals. Attach
// it to a pipeline with WithErrorFeedback; never share one across
// clients (each residual is measured against that client's own
// updates).
type ErrorFeedback = core.Feedback

// NewErrorFeedback returns an empty per-client residual accumulator.
func NewErrorFeedback() *ErrorFeedback { return core.NewFeedback() }

// ResidualStore keys ErrorFeedback state by client id for a fleet of
// encoders. Wire Withdraw to OrchestratorConfig.OnDrop so a client
// whose update the coordinator discarded does not replay a residual
// measured against a model the server never installed.
type ResidualStore = core.ResidualStore

// NewResidualStore returns an empty keyed residual store.
func NewResidualStore() *ResidualStore { return core.NewResidualStore() }

// WithErrorFeedback attaches a per-client residual accumulator to the
// pipeline: every lossy-path tensor is compressed with its
// accumulated residual added back, and the residual the encoded
// payload leaves behind is stored for the next frame. Encoding
// becomes stateful — construct one pipeline (or Codec) per client. A
// nil feedback leaves the pipeline stateless.
func WithErrorFeedback(fb *ErrorFeedback) Option {
	return func(c *core.Config) { c.Feedback = fb }
}

// Architecture builders (torchvision-shape-exact; div > 1 shrinks
// widths for fast experiments).

// AlexNet returns the AlexNet specification (61.1M parameters at
// div=1).
func AlexNet(div int) Arch { return model.AlexNet(div) }

// ResNet50 returns the ResNet-50 specification (25.6M parameters at
// div=1).
func ResNet50(div int) Arch { return model.ResNet50(div) }

// MobileNetV2 returns the MobileNetV2 specification (3.5M parameters
// at div=1).
func MobileNetV2(div int) Arch { return model.MobileNetV2(div) }

// BuildStateDict materializes an architecture with pretrained-like
// weights, deterministically per seed.
func BuildStateDict(a Arch, seed int64) *StateDict {
	return model.BuildStateDict(a, seed)
}

// MarshalStateDict serializes a state dict without compression (the
// uncompressed-update wire format).
func MarshalStateDict(sd *StateDict) ([]byte, error) {
	return core.MarshalStateDict(sd)
}

// UnmarshalStateDict reverses MarshalStateDict.
func UnmarshalStateDict(buf []byte) (*StateDict, error) {
	return core.UnmarshalStateDict(buf)
}

// MarshalStateDictTo streams the uncompressed-update wire format to w
// entry by entry, never materializing the full image; the bytes are
// exactly what MarshalStateDict returns.
func MarshalStateDictTo(w io.Writer, sd *StateDict) error {
	return core.MarshalStateDictTo(w, sd)
}

// UnmarshalStateDictFrom reads one streamed state dict from r (no
// readahead beyond r's own buffering) with bounded allocation on
// untrusted length fields. An empty stream returns io.EOF.
func UnmarshalStateDictFrom(r io.Reader) (*StateDict, error) {
	return core.UnmarshalStateDictFrom(r)
}

// RunSim executes an in-process federated simulation (FedAvg, local
// SGD clients, analytic network model).
func RunSim(cfg SimConfig) (*SimResult, error) { return fl.RunSim(cfg) }

// Orchestration re-exports: the event-driven federated coordination
// subsystem (client registry, per-round sampling with
// over-provisioning, straggler deadlines, sync FedAvg rounds and
// FedBuff-style async buffering, all aggregating through the
// streaming sharded accumulator).
type (
	// Coordinator is the orchestration core: registry, sampler and
	// round/buffer state machines.
	Coordinator = orchestrator.Coordinator
	// OrchestratorConfig parameterizes a Coordinator.
	OrchestratorConfig = orchestrator.Config
	// OrchestratorMode selects sync rounds or the async buffer.
	OrchestratorMode = orchestrator.Mode
	// Round is one open synchronous aggregation round.
	Round = orchestrator.Round
	// Contributor is one in-flight streaming client contribution.
	Contributor = orchestrator.Contributor
	// RoundStats accounts one committed aggregation step.
	RoundStats = orchestrator.RoundStats
	// Aggregator is the streaming sharded FedAvg accumulator.
	Aggregator = orchestrator.Aggregator
	// AsyncCommit reports what an async contribution's commit did to
	// the global model.
	AsyncCommit = orchestrator.AsyncCommit
	// OrchSimConfig parameterizes the orchestrator-backed simulation.
	OrchSimConfig = fl.OrchSimConfig
	// ClientProfile is one simulated client's link/compute profile.
	ClientProfile = netsim.ClientProfile
	// Population samples heterogeneous client profiles.
	Population = netsim.Profile
	// PopulationChoice is one stratum of a heterogeneous Population.
	PopulationChoice = netsim.ProfileChoice
)

// Orchestration modes.
const (
	// ModeSync runs synchronous FedAvg rounds.
	ModeSync = orchestrator.ModeSync
	// ModeAsync runs FedBuff-style buffered asynchronous aggregation.
	ModeAsync = orchestrator.ModeAsync
)

// NewCoordinator builds an orchestration coordinator seeded with the
// initial global model.
func NewCoordinator(cfg OrchestratorConfig, initial *StateDict) (*Coordinator, error) {
	return orchestrator.NewCoordinator(cfg, initial)
}

// NewAggregator builds a streaming sharded accumulator shaped like
// ref (shards ≤ 0 selects an automatic shard count). Folding the same
// updates in the same order is byte-identical to sequential FedAvg.
func NewAggregator(ref *StateDict, shards int) *Aggregator {
	return orchestrator.NewAggregator(ref, shards)
}

// RunOrchestratedSim executes a federated simulation on the
// orchestrator: sampled sync rounds with straggler deadlines or
// FedBuff-style async buffering, over a heterogeneous client
// population, on a virtual clock.
func RunOrchestratedSim(cfg OrchSimConfig) (*SimResult, error) {
	return fl.RunOrchestratedSim(cfg)
}

// PaperMix is the heterogeneous client population used by the scale
// experiment: the paper's 10/100/500 Mbps bandwidths as deployment
// strata plus a slow-device straggler tail.
func PaperMix() Population { return netsim.PaperMix() }

// Hierarchical aggregation re-exports: the regional edge tier that
// folds each region's updates into ONE unnormalized partial sum and
// forwards it upstream, taking a federation's coordinator fan-in from
// the population size to the region count without changing the
// committed model by a single bit.
type (
	// Edge is a regional fold-and-forward aggregator node: it serves a
	// region of clients (or nested edges) on the ordinary transport
	// protocol and participates upstream as a single member.
	Edge = transport.Edge
	// EdgeConfig parameterizes an Edge.
	EdgeConfig = transport.EdgeConfig
	// PartialSum is a region's unnormalized aggregation state
	// (Σ weight·value sums, total weight, update count, plan prior).
	PartialSum = orchestrator.Partial
	// PartialWireOptions controls partial-sum frames on the wire
	// (CRC32C stamping, optional lossless packing).
	PartialWireOptions = hier.WireOptions
	// HierSimConfig parameterizes the 2-tier hierarchical simulation.
	HierSimConfig = fl.HierSimConfig
	// HierStats reports a hierarchical simulation's per-tier outcomes.
	HierStats = fl.HierStats
)

// NewEdge builds a regional edge aggregator. Its Serve folds each
// round's regional updates through the streaming sharded aggregator
// and forwards one partial-sum frame upstream.
func NewEdge(cfg EdgeConfig) (*Edge, error) { return transport.NewEdge(cfg) }

// EncodePartialSum frames a regional partial sum for the wire.
func EncodePartialSum(p *PartialSum, opts PartialWireOptions) ([]byte, error) {
	return hier.EncodePartial(p, opts)
}

// DecodePartialSum reads one partial-sum frame, verifying its CRC32C
// before any content is trusted when the frame is checksummed.
func DecodePartialSum(r io.Reader) (*PartialSum, error) {
	if br, ok := r.(hier.Reader); ok {
		return hier.DecodePartialFrom(br)
	}
	return hier.DecodePartialFrom(bufio.NewReader(r))
}

// RunHierSim executes the 2-tier hierarchical federated simulation:
// regional edge aggregators fold their clients' codec-encoded updates
// and forward partial-sum frames to the coordinator on a virtual
// clock. The committed models are bit-identical to the flat
// simulation's under the same seed.
func RunHierSim(cfg HierSimConfig) (*SimResult, *HierStats, error) {
	return fl.RunHierSim(cfg)
}

// EdgeMix is the client→edge population of a hierarchical tier: fast
// local-network strata (campus LAN, 5G cell) with the same compute
// heterogeneity as PaperMix.
func EdgeMix() Population { return netsim.EdgeMix() }

// ContendedWAN divides a link's bandwidth across sharers concurrent
// senders — the edge→core trunk at the round boundary, when every
// region forwards its partial at once.
func ContendedWAN(l Link, sharers int) Link {
	return netsim.ContendedWAN(l, sharers)
}

// Datasets returns the synthetic dataset specs mirroring the paper's
// CIFAR-10 / Fashion-MNIST / Caltech101 tasks.
func Datasets() []DatasetSpec { return dataset.Specs() }

// Mbps converts megabits per second to the bits-per-second unit used
// by Link and Decision.
func Mbps(x float64) float64 { return netsim.Mbps(x) }

// TransferTime models moving bytes over a link of bandwidthBps.
func TransferTime(bytes int64, bandwidthBps float64) time.Duration {
	return core.TransferTime(bytes, bandwidthBps)
}
