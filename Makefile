# Local dev and CI run the identical commands: .github/workflows/ci.yml
# invokes the same go invocations these targets wrap.

GO ?= go

.PHONY: all build test race bench fmt vet fuzz parallel-bench scale-bench hier-bench hier-smoke adapt-bench families-bench chaos-bench obs-bench obs-smoke trace-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark — the CI smoke; drop -benchtime for
# real measurements. -run=^$$ keeps the unit tests out of this target.
bench:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

# Short fuzz smoke over the six decoder fuzz targets (matches CI).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzDecompress -fuzztime=10s ./internal/core
	$(GO) test -run=^$$ -fuzz=FuzzDecoderStream -fuzztime=10s ./internal/core
	$(GO) test -run=^$$ -fuzz=FuzzFrameIntegrity -fuzztime=10s ./internal/core
	$(GO) test -run=^$$ -fuzz=FuzzHuffmanDecode -fuzztime=10s ./internal/huffman
	$(GO) test -run=^$$ -fuzz=FuzzLZHDecompress -fuzztime=10s ./internal/lossless
	$(GO) test -run=^$$ -fuzz=FuzzFamilyDecode -fuzztime=10s ./internal/family

# Regenerate the committed serial-vs-parallel datapoint. Run on a
# multi-core machine at paper scale: make parallel-bench SCALE=1
SCALE ?= 8
parallel-bench:
	$(GO) run ./cmd/fedszbench -exp parallel -scale $(SCALE) -format json -o BENCH_parallel.json

# Regenerate the committed throughput/allocation datapoint.
throughput-bench:
	$(GO) run ./cmd/fedszbench -exp throughput -scale $(SCALE) -format json -o BENCH_throughput.json

# Regenerate the committed whole-buffer vs pipelined-transfer datapoint.
stream-bench:
	$(GO) run ./cmd/fedszbench -exp stream -scale $(SCALE) -format json -o BENCH_stream.json

# Regenerate the committed 1000-client orchestration datapoint (sync vs
# async, sequential vs streaming sharded aggregation) — including the
# hierarchical per-tier rows (100k virtual clients folding through
# regional edge aggregators into partial-sum frames).
scale-bench:
	$(GO) run ./cmd/fedszbench -exp scale -scale $(SCALE) -format json -o BENCH_scale.json

# The hierarchical rows live in the scale experiment; hier-bench
# regenerates BENCH_scale.json with them (alias kept so the tier work
# has its own entry point).
hier-bench: scale-bench

# CI smoke for the edge tier: a real 3-edge / 30-client federation over
# TCP loopback with checksummed partial frames, under the race
# detector, plus the edge-death and empty-region withdrawal tests.
hier-smoke:
	$(GO) test -race -run 'TestEdge' ./internal/transport/
	$(GO) test -run 'TestHierSim' ./internal/fl/

# Regenerate the committed adaptive-vs-static selection datapoint
# (the control plane's acceptance criterion: adaptive within 5% of the
# best static configuration's bytes-on-wire on PaperMix). The race
# gate covers internal/adapt through ./... like every other package.
adapt-bench:
	$(GO) run ./cmd/fedszbench -exp adapt -scale $(SCALE) -format json -o BENCH_adapt.json

# Regenerate the committed cross-family selection datapoint (the
# family API's acceptance criterion: adaptive at or below the best
# static family's bytes-on-wire, with ≥3 distinct families chosen in
# one frame on the mixed-statistics workload).
families-bench:
	$(GO) run ./cmd/fedszbench -exp families -scale $(SCALE) -format json -o BENCH_families.json

# Regenerate the committed fault-injection datapoint (the robustness
# acceptance criterion: every fault regime — frame corruption,
# connection kills, coordinator crash/restore — completes its round
# budget with zero corrupt frames folded into the global model).
chaos-bench:
	$(GO) run ./cmd/fedszbench -exp chaos -scale $(SCALE) -format json -o BENCH_chaos.json

# Regenerate the committed telemetry-overhead datapoint (the
# observability acceptance criterion: instrumented sz2 streaming
# decode within 3% of obs.Disabled throughput, 0 extra allocs/op).
obs-bench:
	$(GO) run ./cmd/fedszbench -exp obs -scale $(SCALE) -format json -o BENCH_obs.json

# Live observability smoke: real fedszserver + 3 clients over TCP
# loopback with -metrics-addr on, one client frozen to produce a drop
# series, /metrics + /rounds + /debug/vars scraped and asserted.
obs-smoke:
	bash scripts/obs_smoke.sh

# Live tracing smoke: a 2-edge / 4-client federation over TCP loopback,
# /readyz-gated, asserting /rounds/tree grafts both regions, computes a
# critical path fitting the round wall time within 10%, and that
# fedsztop renders a headless snapshot from the same endpoint.
trace-smoke:
	bash scripts/trace_smoke.sh

# Profile an experiment, e.g.: make profile EXP=throughput
# then: go tool pprof cpu.pprof
EXP ?= throughput
profile:
	$(GO) run ./cmd/fedszbench -exp $(EXP) -scale $(SCALE) -cpuprofile cpu.pprof -memprofile mem.pprof -o /dev/null
