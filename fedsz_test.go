package fedsz

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"sync"
	"testing"
	"time"

	"fedsz/internal/model"
)

func TestPublicCompressDecompress(t *testing.T) {
	sd := BuildStateDict(MobileNetV2(8), 42)
	buf, stats, err := Compress(sd)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ratio() < 2 {
		t.Fatalf("default ratio %.2f too low", stats.Ratio())
	}
	got, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != sd.Len() {
		t.Fatalf("entry count %d != %d", got.Len(), sd.Len())
	}
	// Metadata (non-weight) entries survive bit-exact.
	for _, e := range sd.Entries() {
		if e.IsWeightNamed() && e.NumElements() > DefaultThreshold {
			continue
		}
		ge, ok := got.Get(e.Name)
		if !ok {
			t.Fatalf("missing %q", e.Name)
		}
		if e.DType == model.Float32 {
			for i, v := range e.Tensor.Data() {
				if ge.Tensor.Data()[i] != v {
					t.Fatalf("metadata entry %q not exact", e.Name)
				}
			}
		}
	}
}

func TestPublicOptions(t *testing.T) {
	sd := BuildStateDict(MobileNetV2(16), 1)
	loose, _, err := Compress(sd, WithRelBound(1e-1), WithCompressor("sz3"), WithLossless("zstdlike"))
	if err != nil {
		t.Fatal(err)
	}
	tight, _, err := Compress(sd, WithRelBound(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	if len(loose) >= len(tight) {
		t.Fatalf("1e-1 (%d) should be smaller than 1e-4 (%d)", len(loose), len(tight))
	}
	if _, _, err := Compress(sd, WithCompressor("nope")); err == nil {
		t.Fatal("expected unknown-compressor error")
	}
	if _, _, err := Compress(sd, WithAbsBound(-1)); err == nil {
		t.Fatal("expected bound error")
	}
	if _, _, err := Compress(sd, WithThreshold(-2)); err == nil {
		t.Fatal("expected threshold error")
	}
	// WithParallelism never changes the bitstream, only wall-clock.
	serial, _, err := Compress(sd, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	wide, _, err := Compress(sd, WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(wide) || string(serial) != string(wide) {
		t.Fatal("bitstream differs across parallelism levels")
	}
	if _, _, err := Compress(sd, WithParallelism(-1)); err == nil {
		t.Fatal("expected parallelism error")
	}
}

func TestPublicCodec(t *testing.T) {
	codec, err := NewCodec(WithRelBound(1e-2))
	if err != nil {
		t.Fatal(err)
	}
	sd := BuildStateDict(MobileNetV2(16), 9)
	buf, st, err := codec.Encode(sd)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ratio() < 2 {
		t.Fatalf("codec ratio %.2f", st.Ratio())
	}
	if _, err := codec.Decode(buf); err != nil {
		t.Fatal(err)
	}
}

func TestPublicMarshal(t *testing.T) {
	sd := BuildStateDict(MobileNetV2(16), 3)
	blob, err := MarshalStateDict(sd)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalStateDict(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumElements() != sd.NumElements() {
		t.Fatal("marshal round trip")
	}
}

func TestPublicListings(t *testing.T) {
	// The registry may carry test-registered extras; the built-in
	// suites must always be present.
	for _, want := range []string{"sz2", "sz3", "szx", "zfp"} {
		if !contains(Compressors(), want) {
			t.Fatalf("compressors missing %q: %v", want, Compressors())
		}
	}
	if contains(Compressors(), "szx-artifact") {
		t.Fatalf("variant leaked into listing: %v", Compressors())
	}
	for _, want := range []string{"blosclz", "gzip", "xzlike", "zlib", "zstdlike"} {
		if !contains(LosslessCodecs(), want) {
			t.Fatalf("lossless missing %q: %v", want, LosslessCodecs())
		}
	}
	if len(Datasets()) != 3 {
		t.Fatalf("datasets: %v", Datasets())
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func TestPublicArchBuilders(t *testing.T) {
	if AlexNet(1).NumParams() != 61100840 {
		t.Fatal("alexnet params")
	}
	if ResNet50(1).NumParams() != 25557032 {
		t.Fatal("resnet50 params")
	}
	if MobileNetV2(1).NumParams() != 3504872 {
		t.Fatal("mobilenetv2 params")
	}
}

func TestPublicDecision(t *testing.T) {
	d := Decision{
		OriginalBytes:   14e6,
		CompressedBytes: 2e6,
		BandwidthBps:    Mbps(10),
	}
	if !d.ShouldCompress() {
		t.Fatal("compression should win at 10 Mbps")
	}
	if TransferTime(10e6, Mbps(10)).Seconds() != 8 {
		t.Fatal("transfer time")
	}
}

func TestPublicRunSim(t *testing.T) {
	codec, err := NewCodec()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSim(SimConfig{
		Clients:          2,
		Rounds:           2,
		SamplesPerClient: 30,
		TestSamples:      50,
		Codec:            codec,
		Link:             Link{BandwidthBps: Mbps(10)},
		Seed:             3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 2 {
		t.Fatal("rounds")
	}
	if math.IsNaN(res.FinalAccuracy()) {
		t.Fatal("accuracy NaN")
	}
}

func TestPublicBaselineAndDeltaCodecs(t *testing.T) {
	inner, err := NewCodec(WithRelBound(1e-2))
	if err != nil {
		t.Fatal(err)
	}
	stacked := NewBaselineCodec(TopK{Fraction: 0.2}, inner)
	sd := BuildStateDict(MobileNetV2(16), 4)
	buf, st, err := stacked.Encode(sd)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ratio() < 2 {
		t.Fatalf("stacked ratio %.2f", st.Ratio())
	}
	if _, err := stacked.Decode(buf); err != nil {
		t.Fatal(err)
	}

	delta := NewDeltaCodec(inner)
	res, err := RunSim(SimConfig{
		Clients:          2,
		Rounds:           2,
		SamplesPerClient: 30,
		TestSamples:      50,
		Codec:            delta,
		Seed:             8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 2 {
		t.Fatal("delta sim rounds")
	}
}

// TestPublicEncoderDecoder checks the streaming API end to end: the
// Encoder's buffer output is byte-identical to Compress with the same
// options, multiple frames share one stream, and the Decoder returns
// io.EOF at exhaustion.
func TestPublicEncoderDecoder(t *testing.T) {
	sd := BuildStateDict(MobileNetV2(16), 6)
	opts := []Option{WithCompressor("sz3"), WithRelBound(1e-2), WithLossless("zstdlike")}
	want, _, err := Compress(sd, opts...)
	if err != nil {
		t.Fatal(err)
	}

	var stream bytes.Buffer
	enc, err := NewEncoder(&stream, opts...)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := enc.Encode(sd)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stream.Bytes(), want) {
		t.Fatalf("encoder output diverges from Compress (%d vs %d bytes)", stream.Len(), len(want))
	}
	if stats.CompressedBytes != int64(len(want)) {
		t.Fatalf("stats.CompressedBytes %d != %d", stats.CompressedBytes, len(want))
	}
	if _, err := enc.Encode(sd); err != nil { // second frame on the same stream
		t.Fatal(err)
	}

	dec := NewDecoder(&stream)
	for frame := 0; frame < 2; frame++ {
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("frame %d: %v", frame, err)
		}
		if got.Len() != sd.Len() {
			t.Fatalf("frame %d: %d entries, want %d", frame, got.Len(), sd.Len())
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("exhausted stream: got %v, want io.EOF", err)
	}
}

// rawLossy is a registry-test compressor built purely on the public
// surface: varint count + raw little-endian floats (zero error).
type rawLossy struct{}

func (rawLossy) Name() string { return "test-raw" }

func (rawLossy) Compress(data []float32, p LossyParams) ([]byte, error) {
	out := binary.AppendUvarint([]byte("TRAW"), uint64(len(data)))
	for _, v := range data {
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(v))
	}
	return out, nil
}

func (rawLossy) Decompress(buf []byte) ([]float32, error) {
	if len(buf) < 4 || string(buf[:4]) != "TRAW" {
		return nil, errors.New("test-raw: bad magic")
	}
	buf = buf[4:]
	n, k := binary.Uvarint(buf)
	if k <= 0 || n > uint64(len(buf[k:]))/4 {
		return nil, errors.New("test-raw: truncated")
	}
	buf = buf[k:]
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return out, nil
}

// storeLossless is a passthrough lossless codec for the registry test.
type storeLossless struct{}

func (storeLossless) Name() string { return "test-store" }

func (s storeLossless) Compress(src []byte) ([]byte, error) { return s.AppendCompress(nil, src) }

func (storeLossless) AppendCompress(dst, src []byte) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	return append(dst, src...), nil
}

func (storeLossless) Decompress(src []byte) ([]byte, error) {
	n, k := binary.Uvarint(src)
	if k <= 0 || uint64(len(src[k:])) < n {
		return nil, errors.New("test-store: truncated")
	}
	return append([]byte(nil), src[k:k+int(n)]...), nil
}

// The registry is process-global, so register the test codecs exactly
// once even when the test re-runs in-process (go test -count=2).
var (
	registerTestCodecs sync.Once
	testLossyErr       error
	testLosslessErr    error
)

// TestPublicRegistry plugs a custom lossy compressor and lossless
// codec in through the public registry and runs them through the full
// pipeline — including decode, which resolves them from the names
// recorded in the self-describing frame.
func TestPublicRegistry(t *testing.T) {
	registerTestCodecs.Do(func() {
		testLossyErr = RegisterLossy("test-raw", func() LossyCompressor { return rawLossy{} })
		testLosslessErr = RegisterLossless("test-store", func() LosslessCodec { return storeLossless{} })
	})
	if testLossyErr != nil {
		t.Fatal(testLossyErr)
	}
	if testLosslessErr != nil {
		t.Fatal(testLosslessErr)
	}
	// Duplicates are rejected.
	if err := RegisterLossy("test-raw", func() LossyCompressor { return rawLossy{} }); err == nil {
		t.Fatal("duplicate lossy registration accepted")
	}
	if err := RegisterLossless("test-store", func() LosslessCodec { return storeLossless{} }); err == nil {
		t.Fatal("duplicate lossless registration accepted")
	}
	if !contains(Compressors(), "test-raw") || !contains(LosslessCodecs(), "test-store") {
		t.Fatalf("registered names missing from listings: %v / %v", Compressors(), LosslessCodecs())
	}

	sd := BuildStateDict(MobileNetV2(16), 2)
	var stream bytes.Buffer
	enc, err := NewEncoder(&stream, WithCompressor("test-raw"), WithLossless("test-store"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Encode(sd); err != nil {
		t.Fatal(err)
	}
	got, err := NewDecoder(&stream).Decode()
	if err != nil {
		t.Fatal(err)
	}
	// The raw test codec is exact: the round trip must be bit-perfect.
	gotEntries := got.Entries()
	for i, e := range sd.Entries() {
		g := gotEntries[i]
		if g.Name != e.Name {
			t.Fatalf("entry %d: %q != %q", i, g.Name, e.Name)
		}
		if e.DType != model.Float32 {
			continue
		}
		for j, v := range e.Tensor.Data() {
			if g.Tensor.Data()[j] != v {
				t.Fatalf("entry %q[%d] not exact through custom codecs", e.Name, j)
			}
		}
	}
}

// TestPublicStreamingMarshal round-trips the streaming state-dict
// serializer through the public API.
func TestPublicStreamingMarshal(t *testing.T) {
	sd := BuildStateDict(MobileNetV2(16), 12)
	want, err := MarshalStateDict(sd)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := MarshalStateDictTo(&buf, sd); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("streamed marshal diverges from MarshalStateDict")
	}
	got, err := UnmarshalStateDictFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumElements() != sd.NumElements() {
		t.Fatal("streaming marshal round trip")
	}
}

// TestPublicPipelinedDecision sanity-checks the Eqn. 1 pipelined
// extension: overlap can only help, and with many chunks the
// compressed path approaches max(tC, tT) + tD.
func TestPublicPipelinedDecision(t *testing.T) {
	d := Decision{
		CompressTime:    2 * time.Second,
		OriginalBytes:   100e6,
		CompressedBytes: 25e6,
		BandwidthBps:    Mbps(100),
	}
	whole := d.CompressedPathTime()
	piped := d.PipelinedTime(100)
	if piped >= whole {
		t.Fatalf("pipelined %v should beat whole-buffer %v", piped, whole)
	}
	if d.PipelinedTime(1) != whole {
		t.Fatal("single chunk must degenerate to the whole-buffer path")
	}
	// 25e6 bytes at 100 Mbps = 2s transfer; overlapped with 2s of tC
	// the 100-chunk path sits just above 2s — and far below the 4s sum.
	if piped > 2*time.Second+3*whole/100 {
		t.Fatalf("pipelined %v not close to bottleneck stage", piped)
	}
}

// TestPublicAdaptive drives the adaptive control plane through the
// public API end to end: an adaptive Encoder streams frames that the
// ordinary Decoder — with no policy — decodes, within the scheduled
// bound, and a shared policy serves a codec while following round
// directives.
func TestPublicAdaptive(t *testing.T) {
	policy, err := NewAdaptivePolicy(AdaptiveConfig{SampleElems: 1024})
	if err != nil {
		t.Fatal(err)
	}
	sd := BuildStateDict(MobileNetV2(16), 42)

	var wire bytes.Buffer
	enc, err := NewEncoder(&wire, WithAdaptive(policy))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := enc.Encode(sd)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ratio() < 1.5 {
		t.Fatalf("adaptive ratio %.2f too low", stats.Ratio())
	}
	got, err := NewDecoder(&wire).Decode()
	if err != nil {
		t.Fatalf("plain Decoder on adaptive frame: %v", err)
	}
	if got.Len() != sd.Len() {
		t.Fatalf("entry count %d != %d", got.Len(), sd.Len())
	}
	bound := policy.Bound()
	gotEntries := got.Entries()
	for i, e := range sd.Entries() {
		if e.Tensor == nil || !e.IsWeightNamed() || e.NumElements() <= DefaultThreshold {
			continue
		}
		od, gd := e.Tensor.Data(), gotEntries[i].Tensor.Data()
		mn, mx := od[0], od[0]
		for _, v := range od {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		abs := bound * float64(mx-mn)
		for j := range od {
			if d := math.Abs(float64(od[j]) - float64(gd[j])); d > abs*(1+1e-6) {
				t.Fatalf("tensor %q element %d: error %g beyond bound %g", e.Name, j, d, abs)
			}
		}
	}
	if plans := policy.Plans(); len(plans) == 0 {
		t.Fatal("policy cached no plans")
	}

	// The same policy behind a Codec follows round-bound directives.
	codec, err := NewCodec(WithAdaptive(policy))
	if err != nil {
		t.Fatal(err)
	}
	if codec.Name() != "fedsz-adaptive" {
		t.Fatalf("codec name %q", codec.Name())
	}
	type boundAware interface{ SetRoundBound(float64) }
	ba, ok := codec.(boundAware)
	if !ok {
		t.Fatal("adaptive codec is not bound-aware")
	}
	ba.SetRoundBound(5e-3)
	if b := policy.Bound(); b != 5e-3 {
		t.Fatalf("policy bound %g after directive, want 5e-3", b)
	}
	buf, _, err := codec.Encode(sd)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(buf); err != nil {
		t.Fatal(err)
	}
}
