package fedsz

import (
	"math"
	"testing"

	"fedsz/internal/model"
)

func TestPublicCompressDecompress(t *testing.T) {
	sd := BuildStateDict(MobileNetV2(8), 42)
	buf, stats, err := Compress(sd)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ratio() < 2 {
		t.Fatalf("default ratio %.2f too low", stats.Ratio())
	}
	got, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != sd.Len() {
		t.Fatalf("entry count %d != %d", got.Len(), sd.Len())
	}
	// Metadata (non-weight) entries survive bit-exact.
	for _, e := range sd.Entries() {
		if e.IsWeightNamed() && e.NumElements() > DefaultThreshold {
			continue
		}
		ge, ok := got.Get(e.Name)
		if !ok {
			t.Fatalf("missing %q", e.Name)
		}
		if e.DType == model.Float32 {
			for i, v := range e.Tensor.Data() {
				if ge.Tensor.Data()[i] != v {
					t.Fatalf("metadata entry %q not exact", e.Name)
				}
			}
		}
	}
}

func TestPublicOptions(t *testing.T) {
	sd := BuildStateDict(MobileNetV2(16), 1)
	loose, _, err := Compress(sd, WithRelBound(1e-1), WithCompressor("sz3"), WithLossless("zstdlike"))
	if err != nil {
		t.Fatal(err)
	}
	tight, _, err := Compress(sd, WithRelBound(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	if len(loose) >= len(tight) {
		t.Fatalf("1e-1 (%d) should be smaller than 1e-4 (%d)", len(loose), len(tight))
	}
	if _, _, err := Compress(sd, WithCompressor("nope")); err == nil {
		t.Fatal("expected unknown-compressor error")
	}
	if _, _, err := Compress(sd, WithAbsBound(-1)); err == nil {
		t.Fatal("expected bound error")
	}
	if _, _, err := Compress(sd, WithThreshold(-2)); err == nil {
		t.Fatal("expected threshold error")
	}
	// WithParallelism never changes the bitstream, only wall-clock.
	serial, _, err := Compress(sd, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	wide, _, err := Compress(sd, WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(wide) || string(serial) != string(wide) {
		t.Fatal("bitstream differs across parallelism levels")
	}
	if _, _, err := Compress(sd, WithParallelism(-1)); err == nil {
		t.Fatal("expected parallelism error")
	}
}

func TestPublicCodec(t *testing.T) {
	codec, err := NewCodec(WithRelBound(1e-2))
	if err != nil {
		t.Fatal(err)
	}
	sd := BuildStateDict(MobileNetV2(16), 9)
	buf, st, err := codec.Encode(sd)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ratio() < 2 {
		t.Fatalf("codec ratio %.2f", st.Ratio())
	}
	if _, err := codec.Decode(buf); err != nil {
		t.Fatal(err)
	}
}

func TestPublicMarshal(t *testing.T) {
	sd := BuildStateDict(MobileNetV2(16), 3)
	blob, err := MarshalStateDict(sd)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalStateDict(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumElements() != sd.NumElements() {
		t.Fatal("marshal round trip")
	}
}

func TestPublicListings(t *testing.T) {
	if len(Compressors()) != 4 {
		t.Fatalf("compressors: %v", Compressors())
	}
	if len(LosslessCodecs()) != 5 {
		t.Fatalf("lossless: %v", LosslessCodecs())
	}
	if len(Datasets()) != 3 {
		t.Fatalf("datasets: %v", Datasets())
	}
}

func TestPublicArchBuilders(t *testing.T) {
	if AlexNet(1).NumParams() != 61100840 {
		t.Fatal("alexnet params")
	}
	if ResNet50(1).NumParams() != 25557032 {
		t.Fatal("resnet50 params")
	}
	if MobileNetV2(1).NumParams() != 3504872 {
		t.Fatal("mobilenetv2 params")
	}
}

func TestPublicDecision(t *testing.T) {
	d := Decision{
		OriginalBytes:   14e6,
		CompressedBytes: 2e6,
		BandwidthBps:    Mbps(10),
	}
	if !d.ShouldCompress() {
		t.Fatal("compression should win at 10 Mbps")
	}
	if TransferTime(10e6, Mbps(10)).Seconds() != 8 {
		t.Fatal("transfer time")
	}
}

func TestPublicRunSim(t *testing.T) {
	codec, err := NewCodec()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSim(SimConfig{
		Clients:          2,
		Rounds:           2,
		SamplesPerClient: 30,
		TestSamples:      50,
		Codec:            codec,
		Link:             Link{BandwidthBps: Mbps(10)},
		Seed:             3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 2 {
		t.Fatal("rounds")
	}
	if math.IsNaN(res.FinalAccuracy()) {
		t.Fatal("accuracy NaN")
	}
}

func TestPublicBaselineAndDeltaCodecs(t *testing.T) {
	inner, err := NewCodec(WithRelBound(1e-2))
	if err != nil {
		t.Fatal(err)
	}
	stacked := NewBaselineCodec(TopK{Fraction: 0.2}, inner)
	sd := BuildStateDict(MobileNetV2(16), 4)
	buf, st, err := stacked.Encode(sd)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ratio() < 2 {
		t.Fatalf("stacked ratio %.2f", st.Ratio())
	}
	if _, err := stacked.Decode(buf); err != nil {
		t.Fatal(err)
	}

	delta := NewDeltaCodec(inner)
	res, err := RunSim(SimConfig{
		Clients:          2,
		Rounds:           2,
		SamplesPerClient: 30,
		TestSamples:      50,
		Codec:            delta,
		Seed:             8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 2 {
		t.Fatal("delta sim rounds")
	}
}
