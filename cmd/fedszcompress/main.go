// Command fedszcompress exercises the FedSZ pipeline on a synthetic
// model update from the command line: build a pretrained-like state
// dict, compress it with a chosen compressor and bound, verify the
// round trip and report sizes, ratios and Eqn. 1 decisions.
//
// Usage:
//
//	fedszcompress -model alexnet -scale 8 -compressor sz2 -bound 1e-2
//	fedszcompress -model mobilenetv2 -scale 1 -bandwidth 10
//	fedszcompress -adaptive -verify
//
// -adaptive routes compression through the adaptive control plane
// (per-tensor compressor/bound selection); -verify decodes the output
// and exits nonzero with a clear message if any element violates the
// requested error bound. -list prints every registered compressor
// family with its parameter grid and bound guarantees, then exits.
//
// Three streaming modes built on the fedsz Encoder/Decoder compose in
// shell pipelines, gzip-style, with `-in`/`-out` defaulting to `-`
// (stdin/stdout): -emit writes a synthetic update in the uncompressed
// wire format, -z compresses that format into a FedSZ frame, and -d
// decompresses a frame back. Every stage streams — no mode holds a
// full wire image in memory.
//
//	fedszcompress -emit -scale 4 | fedszcompress -z | fedszcompress -d | wc -c
//	fedszcompress -emit | fedszcompress -z -compressor sz3 -out update.fsz
//	fedszcompress -d -in update.fsz -out update.fsd
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"fedsz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fedszcompress:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modelName  = flag.String("model", "mobilenetv2", "model: alexnet, resnet50, mobilenetv2")
		scale      = flag.Int("scale", 8, "width divisor (1 = paper scale)")
		compressor = flag.String("compressor", "sz2", "compressor family (see -list): sz2, sz3, szx, szx-artifact, zfp, topk, randk, qsgd, pred")
		listFams   = flag.Bool("list", false, "list registered compressor families with their parameter grids and exit")
		bound      = flag.Float64("bound", 1e-2, "relative error bound")
		adaptive   = flag.Bool("adaptive", false, "pick compressor/bound per tensor with the adaptive control plane")
		verify     = flag.Bool("verify", false, "decode the output and fail (exit nonzero) if any element violates the requested error bound")
		bandwidth  = flag.Float64("bandwidth", 10, "link bandwidth in Mbps for the Eqn. 1 report")
		seed       = flag.Int64("seed", 42, "weight seed")
		zMode      = flag.Bool("z", false, "stream mode: compress a state-dict stream into a FedSZ frame")
		dMode      = flag.Bool("d", false, "stream mode: decompress a FedSZ frame into a state-dict stream")
		emitMode   = flag.Bool("emit", false, "stream mode: write the synthetic model's state-dict stream")
		in         = flag.String("in", "-", "stream-mode input path ('-' = stdin)")
		out        = flag.String("out", "-", "stream-mode output path ('-' = stdout)")
	)
	flag.Parse()

	if *listFams {
		return listFamilies(os.Stdout)
	}

	modes := 0
	for _, m := range []bool{*zMode, *dMode, *emitMode} {
		if m {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("-z, -d and -emit are mutually exclusive")
	}

	var arch fedsz.Arch
	switch *modelName {
	case "alexnet":
		arch = fedsz.AlexNet(*scale)
	case "resnet50":
		arch = fedsz.ResNet50(*scale)
	case "mobilenetv2":
		arch = fedsz.MobileNetV2(*scale)
	default:
		return fmt.Errorf("unknown model %q", *modelName)
	}

	opts := []fedsz.Option{fedsz.WithCompressor(*compressor), fedsz.WithRelBound(*bound)}
	if *adaptive {
		policy, err := fedsz.NewAdaptivePolicy(fedsz.AdaptiveConfig{BaseBound: *bound})
		if err != nil {
			return err
		}
		opts = append(opts, fedsz.WithAdaptive(policy))
	}

	if modes == 1 {
		if (*emitMode || *dMode) && *verify {
			return fmt.Errorf("-verify needs the original update to compare against: use it with -z or the default mode")
		}
		return runStream(*zMode, *dMode, arch, *seed, opts, *bound, *verify, *in, *out)
	}

	sd := fedsz.BuildStateDict(arch, *seed)
	fmt.Printf("model %s (scale %d): %d entries, %d elements, %.1f MB\n",
		arch.Name, *scale, sd.Len(), sd.NumElements(), float64(sd.SizeBytes())/1e6)

	buf, stats, err := fedsz.Compress(sd, opts...)
	if err != nil {
		return err
	}

	decompStart := time.Now()
	restored, err := fedsz.Decompress(buf)
	if err != nil {
		return err
	}
	decompTime := time.Since(decompStart)

	if *verify {
		if err := verifyBound(sd, restored, *bound); err != nil {
			return err
		}
		fmt.Printf("verify: all lossy elements within REL %.0e\n", *bound)
	}
	maxErr := maxRelError(sd, restored)
	name := *compressor
	if *adaptive {
		name = "adaptive"
	}
	fmt.Printf("compressor=%s bound=%.0e\n", name, *bound)
	fmt.Printf("  compressed:   %.1f MB (ratio %.2fx)\n", float64(stats.CompressedBytes)/1e6, stats.Ratio())
	fmt.Printf("  lossy path:   %d tensors, %.1f MB -> %.1f MB\n",
		stats.NumLossyTensors, float64(stats.LossyInBytes)/1e6, float64(stats.LossyOutBytes)/1e6)
	fmt.Printf("  lossless:     %d entries, %.1f MB -> %.1f MB\n",
		stats.NumMetaEntries, float64(stats.MetaInBytes)/1e6, float64(stats.MetaOutBytes)/1e6)
	fmt.Printf("  compress:     %v   decompress: %v\n", stats.CompressTime.Round(time.Millisecond), decompTime.Round(time.Millisecond))
	fmt.Printf("  max rel err:  %.3g (requested %.0e)\n", maxErr, *bound)

	d := fedsz.Decision{
		CompressTime:    stats.CompressTime,
		DecompressTime:  decompTime,
		OriginalBytes:   stats.OriginalBytes,
		CompressedBytes: stats.CompressedBytes,
		BandwidthBps:    fedsz.Mbps(*bandwidth),
	}
	verdict := "send raw"
	if d.ShouldCompress() {
		verdict = "compress"
	}
	fmt.Printf("Eqn.1 @ %.0f Mbps: compressed path %v vs raw %v -> %s (crossover ≈ %.0f Mbps)\n",
		*bandwidth,
		d.CompressedPathTime().Round(time.Millisecond),
		d.UncompressedPathTime().Round(time.Millisecond),
		verdict,
		d.CrossoverBandwidthBps()/1e6)
	return nil
}

// listFamilies prints every registered compressor family — name, kind,
// and each grid setting with its bound guarantee — in the registry's
// sorted order. Unbounded settings are flagged so users know to pair
// them with error feedback.
func listFamilies(w io.Writer) error {
	fmt.Fprintf(w, "%-14s %-8s %-14s %s\n", "FAMILY", "KIND", "SETTING", "GUARANTEE")
	for _, name := range fedsz.Families() {
		f, err := fedsz.FamilyByName(name)
		if err != nil {
			return err
		}
		for _, s := range fedsz.FamilyGrid(f) {
			guarantee := "error-bounded"
			if !f.Bounded(s) {
				guarantee = "unbounded (pair with error feedback)"
			}
			fmt.Fprintf(w, "%-14s %-8s %-14s %s\n", name, f.Kind(), s.String(), guarantee)
		}
	}
	return nil
}

// runStream executes one of the shell-pipeline modes: -emit (synthetic
// state dict out), -z (state dict in, FedSZ frame out) or -d (frame
// in, state dict out). Both sides stream: the frame side goes through
// the fedsz Encoder/Decoder, the plain side through the streaming
// state-dict marshal. With verify set, -z tees the emitted frame into
// memory, decodes it back and fails on any bound violation.
func runStream(zMode, dMode bool, arch fedsz.Arch, seed int64, opts []fedsz.Option, bound float64, verify bool, in, out string) error {
	r, closeIn, err := openStream(in, os.Stdin, func(p string) (io.ReadWriteCloser, error) {
		f, err := os.Open(p)
		return f, err
	})
	if err != nil {
		return err
	}
	defer closeIn()
	w, closeOut, err := openStream(out, os.Stdout, func(p string) (io.ReadWriteCloser, error) {
		f, err := os.Create(p)
		return f, err
	})
	if err != nil {
		return err
	}
	defer closeOut()

	bw := bufio.NewWriterSize(w, 64<<10)
	switch {
	case zMode:
		sd, err := fedsz.UnmarshalStateDictFrom(bufio.NewReaderSize(r, 64<<10))
		if err != nil {
			return fmt.Errorf("read state dict: %w", err)
		}
		var frame bytes.Buffer
		encDst := io.Writer(bw)
		if verify {
			encDst = io.MultiWriter(bw, &frame)
		}
		enc, err := fedsz.NewEncoder(encDst, opts...)
		if err != nil {
			return err
		}
		stats, err := enc.Encode(sd)
		if err != nil {
			return err
		}
		if verify {
			restored, err := fedsz.Decompress(frame.Bytes())
			if err != nil {
				return fmt.Errorf("verify: decode emitted frame: %w", err)
			}
			if err := verifyBound(sd, restored, bound); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "fedszcompress: verify: all lossy elements within REL %.0e\n", bound)
		}
		fmt.Fprintf(os.Stderr, "fedszcompress: %.1f MB -> %.1f MB (ratio %.2fx) in %v\n",
			float64(stats.OriginalBytes)/1e6, float64(stats.CompressedBytes)/1e6,
			stats.Ratio(), stats.CompressTime.Round(time.Millisecond))
	case dMode:
		sd, err := fedsz.NewDecoder(bufio.NewReaderSize(r, 64<<10)).Decode()
		if err != nil {
			return fmt.Errorf("decode frame: %w", err)
		}
		if err := fedsz.MarshalStateDictTo(bw, sd); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fedszcompress: restored %d entries, %.1f MB\n",
			sd.Len(), float64(sd.SizeBytes())/1e6)
	default: // emit
		sd := fedsz.BuildStateDict(arch, seed)
		if err := fedsz.MarshalStateDictTo(bw, sd); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fedszcompress: emitted %s (%d entries, %.1f MB)\n",
			arch.Name, sd.Len(), float64(sd.SizeBytes())/1e6)
	}
	return bw.Flush()
}

// openStream resolves '-' to the standard stream (never closed) or
// opens path via open.
func openStream(path string, std *os.File, open func(string) (io.ReadWriteCloser, error)) (io.ReadWriter, func() error, error) {
	if path == "-" {
		return std, func() error { return nil }, nil
	}
	f, err := open(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// boundSlack absorbs float64→float32 rounding at the bound edge: a
// compressor quantizing exactly at ε can land one ulp past it after
// the float32 store.
const boundSlack = 1 + 1e-6

// forEachLossyTensor walks the lossy-path tensors (the Algorithm 1
// partition predicate) of orig alongside their decoded counterparts,
// handing each pair plus orig's value range to fn; a non-nil fn error
// stops the walk. Both -verify and the max-rel-err report share this
// iteration so they can never disagree on which tensors are checked.
func forEachLossyTensor(orig, got *fedsz.StateDict, fn func(name string, od, gd []float32, rng float64) error) error {
	gotEntries := got.Entries()
	for i, e := range orig.Entries() {
		if e.Tensor == nil || !e.IsWeightNamed() || e.NumElements() <= fedsz.DefaultThreshold {
			continue
		}
		if i >= len(gotEntries) || gotEntries[i].Tensor == nil {
			return fmt.Errorf("tensor %q missing from decoded output", e.Name)
		}
		od, gd := e.Tensor.Data(), gotEntries[i].Tensor.Data()
		if len(od) != len(gd) {
			return fmt.Errorf("tensor %q decoded to %d elements, want %d", e.Name, len(gd), len(od))
		}
		mn, mx := od[0], od[0]
		for _, v := range od {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if err := fn(e.Name, od, gd, float64(mx-mn)); err != nil {
			return err
		}
	}
	return nil
}

// verifyBound checks every element of every lossy-path tensor against
// the requested range-relative bound and returns a clear error naming
// the first violating tensor and element. It is the -verify gate: the
// caller exits nonzero on the error.
func verifyBound(orig, got *fedsz.StateDict, bound float64) error {
	err := forEachLossyTensor(orig, got, func(name string, od, gd []float32, rng float64) error {
		abs := bound * rng
		if abs == 0 {
			// Constant tensor: mirror the REL resolution, which falls
			// back to a magnitude-proportional bound.
			abs = bound * math.Abs(float64(od[0]))
			if abs == 0 {
				abs = bound
			}
		}
		for j := range od {
			if d := math.Abs(float64(od[j]) - float64(gd[j])); d > abs*boundSlack {
				return fmt.Errorf("tensor %q element %d violates the bound: |%g - %g| = %g > %g (REL %.0e over range %g)",
					name, j, od[j], gd[j], d, abs, bound, rng)
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	return nil
}

// maxRelError returns the largest per-tensor range-relative error of
// lossy entries.
func maxRelError(orig, got *fedsz.StateDict) float64 {
	worst := 0.0
	_ = forEachLossyTensor(orig, got, func(_ string, od, gd []float32, rng float64) error {
		if rng == 0 {
			return nil
		}
		for j := range od {
			if d := math.Abs(float64(od[j])-float64(gd[j])) / rng; d > worst {
				worst = d
			}
		}
		return nil
	})
	return worst
}
