// Command fedszcompress exercises the FedSZ pipeline on a synthetic
// model update from the command line: build a pretrained-like state
// dict, compress it with a chosen compressor and bound, verify the
// round trip and report sizes, ratios and Eqn. 1 decisions.
//
// Usage:
//
//	fedszcompress -model alexnet -scale 8 -compressor sz2 -bound 1e-2
//	fedszcompress -model mobilenetv2 -scale 1 -bandwidth 10
//
// Three streaming modes built on the fedsz Encoder/Decoder compose in
// shell pipelines, gzip-style, with `-in`/`-out` defaulting to `-`
// (stdin/stdout): -emit writes a synthetic update in the uncompressed
// wire format, -z compresses that format into a FedSZ frame, and -d
// decompresses a frame back. Every stage streams — no mode holds a
// full wire image in memory.
//
//	fedszcompress -emit -scale 4 | fedszcompress -z | fedszcompress -d | wc -c
//	fedszcompress -emit | fedszcompress -z -compressor sz3 -out update.fsz
//	fedszcompress -d -in update.fsz -out update.fsd
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"fedsz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fedszcompress:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modelName  = flag.String("model", "mobilenetv2", "model: alexnet, resnet50, mobilenetv2")
		scale      = flag.Int("scale", 8, "width divisor (1 = paper scale)")
		compressor = flag.String("compressor", "sz2", "lossy compressor: sz2, sz3, szx, szx-artifact, zfp")
		bound      = flag.Float64("bound", 1e-2, "relative error bound")
		bandwidth  = flag.Float64("bandwidth", 10, "link bandwidth in Mbps for the Eqn. 1 report")
		seed       = flag.Int64("seed", 42, "weight seed")
		zMode      = flag.Bool("z", false, "stream mode: compress a state-dict stream into a FedSZ frame")
		dMode      = flag.Bool("d", false, "stream mode: decompress a FedSZ frame into a state-dict stream")
		emitMode   = flag.Bool("emit", false, "stream mode: write the synthetic model's state-dict stream")
		in         = flag.String("in", "-", "stream-mode input path ('-' = stdin)")
		out        = flag.String("out", "-", "stream-mode output path ('-' = stdout)")
	)
	flag.Parse()

	modes := 0
	for _, m := range []bool{*zMode, *dMode, *emitMode} {
		if m {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("-z, -d and -emit are mutually exclusive")
	}

	var arch fedsz.Arch
	switch *modelName {
	case "alexnet":
		arch = fedsz.AlexNet(*scale)
	case "resnet50":
		arch = fedsz.ResNet50(*scale)
	case "mobilenetv2":
		arch = fedsz.MobileNetV2(*scale)
	default:
		return fmt.Errorf("unknown model %q", *modelName)
	}

	if modes == 1 {
		return runStream(*zMode, *dMode, arch, *seed, *compressor, *bound, *in, *out)
	}

	sd := fedsz.BuildStateDict(arch, *seed)
	fmt.Printf("model %s (scale %d): %d entries, %d elements, %.1f MB\n",
		arch.Name, *scale, sd.Len(), sd.NumElements(), float64(sd.SizeBytes())/1e6)

	buf, stats, err := fedsz.Compress(sd,
		fedsz.WithCompressor(*compressor),
		fedsz.WithRelBound(*bound),
	)
	if err != nil {
		return err
	}

	decompStart := time.Now()
	restored, err := fedsz.Decompress(buf)
	if err != nil {
		return err
	}
	decompTime := time.Since(decompStart)

	maxErr := maxRelError(sd, restored, *bound)
	fmt.Printf("compressor=%s bound=%.0e\n", *compressor, *bound)
	fmt.Printf("  compressed:   %.1f MB (ratio %.2fx)\n", float64(stats.CompressedBytes)/1e6, stats.Ratio())
	fmt.Printf("  lossy path:   %d tensors, %.1f MB -> %.1f MB\n",
		stats.NumLossyTensors, float64(stats.LossyInBytes)/1e6, float64(stats.LossyOutBytes)/1e6)
	fmt.Printf("  lossless:     %d entries, %.1f MB -> %.1f MB\n",
		stats.NumMetaEntries, float64(stats.MetaInBytes)/1e6, float64(stats.MetaOutBytes)/1e6)
	fmt.Printf("  compress:     %v   decompress: %v\n", stats.CompressTime.Round(time.Millisecond), decompTime.Round(time.Millisecond))
	fmt.Printf("  max rel err:  %.3g (requested %.0e)\n", maxErr, *bound)

	d := fedsz.Decision{
		CompressTime:    stats.CompressTime,
		DecompressTime:  decompTime,
		OriginalBytes:   stats.OriginalBytes,
		CompressedBytes: stats.CompressedBytes,
		BandwidthBps:    fedsz.Mbps(*bandwidth),
	}
	verdict := "send raw"
	if d.ShouldCompress() {
		verdict = "compress"
	}
	fmt.Printf("Eqn.1 @ %.0f Mbps: compressed path %v vs raw %v -> %s (crossover ≈ %.0f Mbps)\n",
		*bandwidth,
		d.CompressedPathTime().Round(time.Millisecond),
		d.UncompressedPathTime().Round(time.Millisecond),
		verdict,
		d.CrossoverBandwidthBps()/1e6)
	return nil
}

// runStream executes one of the shell-pipeline modes: -emit (synthetic
// state dict out), -z (state dict in, FedSZ frame out) or -d (frame
// in, state dict out). Both sides stream: the frame side goes through
// the fedsz Encoder/Decoder, the plain side through the streaming
// state-dict marshal.
func runStream(zMode, dMode bool, arch fedsz.Arch, seed int64, compressor string, bound float64, in, out string) error {
	r, closeIn, err := openStream(in, os.Stdin, func(p string) (io.ReadWriteCloser, error) {
		f, err := os.Open(p)
		return f, err
	})
	if err != nil {
		return err
	}
	defer closeIn()
	w, closeOut, err := openStream(out, os.Stdout, func(p string) (io.ReadWriteCloser, error) {
		f, err := os.Create(p)
		return f, err
	})
	if err != nil {
		return err
	}
	defer closeOut()

	bw := bufio.NewWriterSize(w, 64<<10)
	switch {
	case zMode:
		sd, err := fedsz.UnmarshalStateDictFrom(bufio.NewReaderSize(r, 64<<10))
		if err != nil {
			return fmt.Errorf("read state dict: %w", err)
		}
		enc, err := fedsz.NewEncoder(bw,
			fedsz.WithCompressor(compressor), fedsz.WithRelBound(bound))
		if err != nil {
			return err
		}
		stats, err := enc.Encode(sd)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fedszcompress: %s %.1f MB -> %.1f MB (ratio %.2fx) in %v\n",
			compressor, float64(stats.OriginalBytes)/1e6, float64(stats.CompressedBytes)/1e6,
			stats.Ratio(), stats.CompressTime.Round(time.Millisecond))
	case dMode:
		sd, err := fedsz.NewDecoder(bufio.NewReaderSize(r, 64<<10)).Decode()
		if err != nil {
			return fmt.Errorf("decode frame: %w", err)
		}
		if err := fedsz.MarshalStateDictTo(bw, sd); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fedszcompress: restored %d entries, %.1f MB\n",
			sd.Len(), float64(sd.SizeBytes())/1e6)
	default: // emit
		sd := fedsz.BuildStateDict(arch, seed)
		if err := fedsz.MarshalStateDictTo(bw, sd); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fedszcompress: emitted %s (%d entries, %.1f MB)\n",
			arch.Name, sd.Len(), float64(sd.SizeBytes())/1e6)
	}
	return bw.Flush()
}

// openStream resolves '-' to the standard stream (never closed) or
// opens path via open.
func openStream(path string, std *os.File, open func(string) (io.ReadWriteCloser, error)) (io.ReadWriter, func() error, error) {
	if path == "-" {
		return std, func() error { return nil }, nil
	}
	f, err := open(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// maxRelError returns the largest per-tensor range-relative error of
// lossy entries.
func maxRelError(orig, got *fedsz.StateDict, bound float64) float64 {
	worst := 0.0
	gotEntries := got.Entries()
	for i, e := range orig.Entries() {
		if e.Tensor == nil || !e.IsWeightNamed() || e.NumElements() <= fedsz.DefaultThreshold {
			continue
		}
		od, gd := e.Tensor.Data(), gotEntries[i].Tensor.Data()
		mn, mx := od[0], od[0]
		for _, v := range od {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		r := float64(mx - mn)
		if r == 0 {
			continue
		}
		for j := range od {
			if d := math.Abs(float64(od[j])-float64(gd[j])) / r; d > worst {
				worst = d
			}
		}
	}
	return worst
}
