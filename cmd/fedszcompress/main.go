// Command fedszcompress exercises the FedSZ pipeline on a synthetic
// model update from the command line: build a pretrained-like state
// dict, compress it with a chosen compressor and bound, verify the
// round trip and report sizes, ratios and Eqn. 1 decisions.
//
// Usage:
//
//	fedszcompress -model alexnet -scale 8 -compressor sz2 -bound 1e-2
//	fedszcompress -model mobilenetv2 -scale 1 -bandwidth 10
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"fedsz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fedszcompress:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modelName  = flag.String("model", "mobilenetv2", "model: alexnet, resnet50, mobilenetv2")
		scale      = flag.Int("scale", 8, "width divisor (1 = paper scale)")
		compressor = flag.String("compressor", "sz2", "lossy compressor: sz2, sz3, szx, szx-artifact, zfp")
		bound      = flag.Float64("bound", 1e-2, "relative error bound")
		bandwidth  = flag.Float64("bandwidth", 10, "link bandwidth in Mbps for the Eqn. 1 report")
		seed       = flag.Int64("seed", 42, "weight seed")
	)
	flag.Parse()

	var arch fedsz.Arch
	switch *modelName {
	case "alexnet":
		arch = fedsz.AlexNet(*scale)
	case "resnet50":
		arch = fedsz.ResNet50(*scale)
	case "mobilenetv2":
		arch = fedsz.MobileNetV2(*scale)
	default:
		return fmt.Errorf("unknown model %q", *modelName)
	}

	sd := fedsz.BuildStateDict(arch, *seed)
	fmt.Printf("model %s (scale %d): %d entries, %d elements, %.1f MB\n",
		arch.Name, *scale, sd.Len(), sd.NumElements(), float64(sd.SizeBytes())/1e6)

	buf, stats, err := fedsz.Compress(sd,
		fedsz.WithCompressor(*compressor),
		fedsz.WithRelBound(*bound),
	)
	if err != nil {
		return err
	}

	decompStart := time.Now()
	restored, err := fedsz.Decompress(buf)
	if err != nil {
		return err
	}
	decompTime := time.Since(decompStart)

	maxErr := maxRelError(sd, restored, *bound)
	fmt.Printf("compressor=%s bound=%.0e\n", *compressor, *bound)
	fmt.Printf("  compressed:   %.1f MB (ratio %.2fx)\n", float64(stats.CompressedBytes)/1e6, stats.Ratio())
	fmt.Printf("  lossy path:   %d tensors, %.1f MB -> %.1f MB\n",
		stats.NumLossyTensors, float64(stats.LossyInBytes)/1e6, float64(stats.LossyOutBytes)/1e6)
	fmt.Printf("  lossless:     %d entries, %.1f MB -> %.1f MB\n",
		stats.NumMetaEntries, float64(stats.MetaInBytes)/1e6, float64(stats.MetaOutBytes)/1e6)
	fmt.Printf("  compress:     %v   decompress: %v\n", stats.CompressTime.Round(time.Millisecond), decompTime.Round(time.Millisecond))
	fmt.Printf("  max rel err:  %.3g (requested %.0e)\n", maxErr, *bound)

	d := fedsz.Decision{
		CompressTime:    stats.CompressTime,
		DecompressTime:  decompTime,
		OriginalBytes:   stats.OriginalBytes,
		CompressedBytes: stats.CompressedBytes,
		BandwidthBps:    fedsz.Mbps(*bandwidth),
	}
	verdict := "send raw"
	if d.ShouldCompress() {
		verdict = "compress"
	}
	fmt.Printf("Eqn.1 @ %.0f Mbps: compressed path %v vs raw %v -> %s (crossover ≈ %.0f Mbps)\n",
		*bandwidth,
		d.CompressedPathTime().Round(time.Millisecond),
		d.UncompressedPathTime().Round(time.Millisecond),
		verdict,
		d.CrossoverBandwidthBps()/1e6)
	return nil
}

// maxRelError returns the largest per-tensor range-relative error of
// lossy entries.
func maxRelError(orig, got *fedsz.StateDict, bound float64) float64 {
	worst := 0.0
	gotEntries := got.Entries()
	for i, e := range orig.Entries() {
		if e.Tensor == nil || !e.IsWeightNamed() || e.NumElements() <= fedsz.DefaultThreshold {
			continue
		}
		od, gd := e.Tensor.Data(), gotEntries[i].Tensor.Data()
		mn, mx := od[0], od[0]
		for _, v := range od {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		r := float64(mx - mn)
		if r == 0 {
			continue
		}
		for j := range od {
			if d := math.Abs(float64(od[j])-float64(gd[j])) / r; d > worst {
				worst = d
			}
		}
	}
	return worst
}
