// Command fedsztop is a polling terminal dashboard for a running
// federation: point it at one or more observability endpoints
// (fedszserver/fedszedge/fedszclient -metrics-addr) and it renders
// live round progress, per-region commit/drop/byte columns, the
// critical-path attribution of the latest round, and sparkline trends
// for round latency, compression ratio and wire bytes. Plain ANSI on
// stdout, stdlib only — it works over ssh and inside tmux.
//
//	fedsztop -addrs localhost:9090,localhost:9091
//	fedsztop -addrs localhost:9090 -once        # one snapshot, no ANSI clear
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"fedsz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fedsztop:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addrs    = flag.String("addrs", "localhost:9090", "comma-separated observability endpoints to scrape")
		interval = flag.Duration("interval", 2*time.Second, "poll interval")
		once     = flag.Bool("once", false, "render one snapshot and exit (no screen clearing; smoke tests use this)")
		rounds   = flag.Int("n", 32, "rounds of trace to fetch per endpoint (trend window)")
	)
	flag.Parse()

	var targets []*target
	for _, a := range strings.Split(*addrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			targets = append(targets, &target{addr: a})
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("no endpoints in -addrs")
	}
	client := &http.Client{Timeout: 5 * time.Second}

	for {
		var b strings.Builder
		if !*once {
			b.WriteString("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		fmt.Fprintf(&b, "\x1b[1mfedsztop\x1b[0m  %d endpoint(s)  %s\n",
			len(targets), time.Now().Format("15:04:05"))
		for _, t := range targets {
			t.scrape(client, *rounds)
			t.render(&b)
		}
		os.Stdout.WriteString(b.String())
		if *once {
			return nil
		}
		time.Sleep(*interval)
	}
}

// target is one scraped endpoint plus the trend history fedsztop
// accumulates across polls.
type target struct {
	addr    string
	err     error
	trees   []fedsz.Tree       // newest last
	metrics map[string]float64 // series name{labels} -> value
	ratios  []float64          // fedsz_core_ratio across polls
}

func (t *target) scrape(client *http.Client, n int) {
	t.err = nil
	t.trees = nil
	body, err := get(client, t.addr, fmt.Sprintf("/rounds/tree?n=%d", n))
	if err != nil {
		t.err = err
		return
	}
	if err := json.Unmarshal(body, &t.trees); err != nil {
		t.err = fmt.Errorf("parse /rounds/tree: %w", err)
		return
	}
	raw, err := get(client, t.addr, "/metrics")
	if err != nil {
		t.err = err
		return
	}
	t.metrics = parseMetrics(string(raw))
	if r, ok := t.metrics[`fedsz_core_ratio{dir="encode"}`]; ok {
		t.ratios = append(t.ratios, r)
	} else if r, ok := t.metrics["fedsz_core_ratio"]; ok {
		t.ratios = append(t.ratios, r)
	}
	if len(t.ratios) > 64 {
		t.ratios = t.ratios[len(t.ratios)-64:]
	}
}

func get(client *http.Client, addr, path string) ([]byte, error) {
	resp, err := client.Get("http://" + addr + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// parseMetrics reads Prometheus text exposition into a flat
// series -> value map (comments skipped, full label set kept).
func parseMetrics(text string) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(line[i+1:]), 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out
}

// metricSum sums every series of one family (any label set).
func (t *target) metricSum(family string) float64 {
	var sum float64
	for k, v := range t.metrics {
		if k == family || strings.HasPrefix(k, family+"{") {
			sum += v
		}
	}
	return sum
}

func (t *target) render(b *strings.Builder) {
	fmt.Fprintf(b, "\n\x1b[1m── %s ──\x1b[0m\n", t.addr)
	if t.err != nil {
		fmt.Fprintf(b, "  unreachable: %v\n", t.err)
		return
	}
	if len(t.trees) == 0 {
		fmt.Fprintf(b, "  no rounds traced yet\n")
		return
	}
	cur := t.trees[len(t.trees)-1]
	root := cur.Root
	pct := 0.0
	if cur.WallNs > 0 {
		pct = 100 * float64(cur.CriticalNs) / float64(cur.WallNs)
	}
	fmt.Fprintf(b, "  %s round %d   wall %s   critical %s (%.0f%%)   committed %d/%d  dropped %d\n",
		root.Tier, cur.Round, ms(cur.WallNs), ms(cur.CriticalNs), pct,
		root.Committed, root.Sampled, root.Dropped)

	// Critical-path attribution: where the latest round's wall time went.
	if len(cur.CriticalPath) > 0 {
		segs := make([]string, 0, len(cur.CriticalPath))
		for _, s := range cur.CriticalPath {
			name := s.Tier
			if s.ID != "" {
				name += ":" + s.ID
			}
			segs = append(segs, fmt.Sprintf("%s/%s %s", name, s.Phase, ms(s.Ns)))
		}
		fmt.Fprintf(b, "  critical: %s\n", strings.Join(segs, " → "))
	}

	// Per-participant columns (regions first, then clients, by id).
	if len(root.Participants) > 0 {
		fmt.Fprintf(b, "  %-12s %-12s %8s %8s %9s %9s  %s\n",
			"participant", "outcome", "commit", "drop", "up", "settle", "slack")
		for _, p := range root.Participants {
			commit, drop := "-", "-"
			if p.Region != nil {
				commit = strconv.Itoa(p.Region.Committed)
				drop = strconv.Itoa(p.Region.Dropped)
			}
			mark := " "
			if p.Critical {
				mark = "\x1b[1m*\x1b[0m"
			}
			fmt.Fprintf(b, "  %-12s %-12s %8s %8s %9s %9s  %s%s\n",
				p.ID, p.Outcome, commit, drop, bytesStr(p.BytesUp), ms(p.TimeNs), ms(p.SlackNs), mark)
		}
	}

	// Trends over the fetched trace window plus scrape history.
	walls := make([]float64, 0, len(t.trees))
	ups := make([]float64, 0, len(t.trees))
	for _, tr := range t.trees {
		walls = append(walls, float64(tr.WallNs))
		if tr.Root != nil {
			ups = append(ups, float64(tr.Root.BytesUp))
		}
	}
	fmt.Fprintf(b, "  round-wall %s   bytes-up %s", spark(walls), spark(ups))
	if len(t.ratios) > 0 {
		fmt.Fprintf(b, "   ratio %.2fx %s", t.ratios[len(t.ratios)-1], spark(t.ratios))
	}
	b.WriteByte('\n')
	fmt.Fprintf(b, "  totals: rounds %.0f  drops %.0f  tx %s  rx %s\n",
		t.metricSum("fedsz_rounds_committed_total"),
		t.metricSum("fedsz_drops_total"),
		bytesStr(int64(t.metrics[`fedsz_transport_bytes_total{dir="tx"}`])),
		bytesStr(int64(t.metrics[`fedsz_transport_bytes_total{dir="rx"}`])))
}

// spark renders values as a sparkline, scaled to the window's range.
func spark(vals []float64) string {
	const levels = "▁▂▃▄▅▆▇█"
	if len(vals) == 0 {
		return "-"
	}
	if len(vals) > 32 {
		vals = vals[len(vals)-32:]
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * 7)
		}
		b.WriteRune([]rune(levels)[i])
	}
	return b.String()
}

func ms(ns int64) string {
	switch {
	case ns <= 0:
		return "0"
	case ns < 1e6:
		return fmt.Sprintf("%.2gms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.0fms", float64(ns)/1e6)
	}
}

func bytesStr(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
