// Command fedszserver runs a FedSZ federated-learning server over real
// TCP on the orchestration subsystem: clients join and leave
// dynamically, every round samples the currently connected population
// (optionally over-provisioned), stragglers past -deadline are cut,
// and a client that disconnects mid-round is dropped while the round
// commits with the remaining updates — one dead uplink no longer
// aborts the run.
//
// Transfers are pipelined end to end: the global model broadcast
// streams entry by entry, and each client's uplink folds into the
// streaming sharded aggregator as its tensor sections decompress — the
// server never materializes a client's full state dict.
//
// The server is durable and fault-tolerant: -checksum requires
// CRC32C-checked frames (corrupt uplinks quarantine the client for
// the round instead of folding poison), -checkpoint snapshots
// coordinator state atomically every -checkpoint-every commits,
// SIGINT/SIGTERM drain the in-flight round and write a final
// checkpoint, and -restore resumes a killed run from its last
// snapshot while clients ride their retry loop across the restart.
//
// The listener accepts BOTH direct clients and regional edge
// aggregators (cmd/fedszedge) — an edge joins like a client but
// uploads one checksummed partial sum covering its whole region, so
// -min-clients counts participants (edges and direct clients alike)
// and the coordinator's fan-in stays small however many devices sit
// behind the edges.
//
// Pair with cmd/fedszclient (and optionally cmd/fedszedge):
//
//	fedszserver -addr :9000 -min-clients 2 -rounds 5 -checkpoint ck.bin &
//	fedszclient -addr localhost:9000 -shard 0 -shards 2 &
//	fedszclient -addr localhost:9000 -shard 1 -shards 2
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fedsz"
	"fedsz/internal/dataset"
	"fedsz/internal/model"
	"fedsz/internal/nn"
	"fedsz/internal/obs"
	"fedsz/internal/orchestrator"
	"fedsz/internal/transport"
)

// splitFamilies parses a comma-separated -families value ("" = nil,
// meaning every registered family).
func splitFamilies(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fedszserver:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":9000", "listen address")
		minCli    = flag.Int("min-clients", 2, "clients required before the first round starts")
		perRound  = flag.Int("clients-per-round", 0, "participants sampled per round (0 = all joined)")
		overProv  = flag.Float64("over-provision", 1, "sampling over-provisioning factor (≥1)")
		rounds    = flag.Int("rounds", 5, "federated rounds")
		deadline  = flag.Duration("deadline", 0, "per-round straggler cutoff (0 = wait for everyone)")
		bound     = flag.Float64("bound", 1e-2, "relative error bound")
		comp      = flag.String("compressor", "sz2", "lossy compressor")
		adaptive  = flag.Bool("adaptive", false, "schedule per-round error bounds from convergence and broadcast them to clients")
		families  = flag.String("families", "", "adaptive: comma-separated compressor families the policy adapts over (empty = all registered; see fedszcompress -list)")
		minBound  = flag.Float64("min-bound", 0, "adaptive: tightest scheduled bound (0 = bound/10)")
		bandwidth = flag.Float64("bandwidth", 0, "per-connection rate limit in Mbps (0 = unlimited)")
		shards    = flag.Int("shards", 0, "aggregator shard count (0 = auto)")
		checksum  = flag.Bool("checksum", false, "require CRC32C-checked frames (clients must pass -checksum too)")
		ckpt      = flag.String("checkpoint", "", "checkpoint file: snapshot coordinator state here periodically and on shutdown")
		ckptEvery = flag.Int("checkpoint-every", 1, "committed rounds between checkpoints")
		restore   = flag.Bool("restore", false, "resume from -checkpoint instead of starting fresh (file must exist)")
		seed      = flag.Int64("seed", 42, "seed (must match clients)")
		verbose   = flag.Bool("v", false, "shorthand for -log-level debug")
		logLevel  = flag.String("log-level", "info", "log level: debug|info|warn|error")
		logFormat = flag.String("log-format", "text", "log format: text|json")
		metricsAt = flag.String("metrics-addr", "", "serve /metrics, /rounds, /rounds/tree, /debug/vars and /debug/pprof on this address (empty = off)")
		traceN    = flag.Int("trace-rounds", 0, "round spans to retain for /rounds and /rounds/tree (0 = default 128)")
	)
	flag.Parse()

	if *verbose && *logLevel == "info" {
		*logLevel = "debug"
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}

	ms, err := fedsz.ServeObs(fedsz.ObsConfig{Addr: *metricsAt, TraceRounds: *traceN})
	if err != nil {
		return fmt.Errorf("metrics listener: %w", err)
	}
	if ms != nil {
		defer ms.Close()
		logger.Info("metrics listening", "addr", ms.Addr())
	}

	codecOpts := []fedsz.Option{fedsz.WithCompressor(*comp), fedsz.WithRelBound(*bound)}
	if *checksum {
		codecOpts = append(codecOpts, fedsz.WithChecksum())
	}
	codec, err := fedsz.NewCodec(codecOpts...)
	if err != nil {
		return err
	}

	// With -adaptive the policy rides on the coordinator: every commit
	// feeds its convergence EMA, and each round's broadcast carries the
	// scheduled bound to the (bound-aware) clients. Decoding needs no
	// policy — adaptive frames are self-describing.
	var policy *fedsz.AdaptivePolicy
	if *adaptive {
		policy, err = fedsz.NewAdaptivePolicy(fedsz.AdaptiveConfig{
			Families:  splitFamilies(*families),
			BaseBound: *bound,
			MinBound:  *minBound,
		})
		if err != nil {
			return err
		}
	}

	// Server and clients carve one shared dataset (same spec + seed, so
	// identical class templates): clients shard the leading samples,
	// the server evaluates on the 400 samples after them. The client
	// count only shapes the dataset split, so -min-clients stands in
	// for the expected population here.
	spec := dataset.FashionMNIST()
	full := spec.Generate(200*(*minCli)+400, *seed)
	evalNet := nn.MobileNetV2Mini(spec.Dim, spec.Classes, *seed)
	x, y := full.Batch(200*(*minCli), full.N)

	// Transport's printf-style diagnostics (joins, leaves, rejected
	// connections) land at debug level; structured drop events get
	// their own warn-level record below.
	logf := func(format string, args ...interface{}) {
		logger.Debug(fmt.Sprintf(format, args...))
	}
	cfg := transport.OrchestratedConfig{
		Codec:           codec,
		MinClients:      *minCli,
		ClientsPerRound: *perRound,
		OverProvision:   *overProv,
		Rounds:          *rounds,
		RoundDeadline:   *deadline,
		BandwidthBps:    fedsz.Mbps(*bandwidth),
		Shards:          *shards,
		CheckpointPath:  *ckpt,
		CheckpointEvery: *ckptEvery,
		Logf:            logf,
		OnDrop: func(id string, reason orchestrator.DropReason) {
			logger.Warn("client dropped", "client", id, "reason", reason.String())
		},
		OnRound: func(round int, global *model.StateDict, st orchestrator.RoundStats) {
			if err := evalNet.LoadStateDict(global); err != nil {
				logger.Error("round eval failed", "round", round, "err", err)
				return
			}
			attrs := []any{
				"round", round,
				"accuracy", fmt.Sprintf("%.3f", evalNet.Accuracy(x, y)),
				"committed", st.Committed,
				"sampled", st.Sampled,
				"dropped", st.Dropped,
				"agg_kb", fmt.Sprintf("%.1f", float64(st.AggMemory)/1e3),
			}
			if policy != nil {
				attrs = append(attrs, "next_bound", fmt.Sprintf("%.2e", policy.NextBound()))
			}
			logger.Info("round committed", attrs...)
		},
	}
	if policy != nil {
		cfg.Bound = policy
	}
	if *restore {
		if *ckpt == "" {
			return fmt.Errorf("-restore needs -checkpoint")
		}
		ck, err := orchestrator.LoadCheckpoint(*ckpt)
		if err != nil {
			return fmt.Errorf("restore: %w", err)
		}
		cfg.Resume = ck
		logger.Info("resuming from checkpoint",
			"path", *ckpt, "commits", ck.Commits, "rounds", *rounds, "version", ck.Version)
	}
	srv, err := transport.NewOrchestrated(cfg)
	if err != nil {
		return err
	}

	// SIGINT/SIGTERM drain gracefully: the round in flight commits, a
	// final checkpoint is written when -checkpoint is set, and clients
	// get a proper shutdown message. A second signal kills the process
	// the usual way (the handler resets after one shot).
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		signal.Stop(sigc)
		logger.Info("draining round and shutting down (repeat signal to force)", "signal", sig.String())
		srv.Shutdown()
	}()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	logger.Info("listening",
		"addr", ln.Addr().String(), "min_clients", *minCli, "rounds", *rounds,
		"compressor", *comp, "bound", fmt.Sprintf("%.0e", *bound), "deadline", time.Duration(*deadline).String())

	initial := nn.MobileNetV2Mini(spec.Dim, spec.Classes, *seed).StateDict()
	final, err := srv.Serve(ln, initial)
	if err != nil {
		return err
	}
	logger.Info("training complete", "model_entries", final.Len())
	return nil
}
