// Command fedszserver runs a FedSZ federated-learning server over real
// TCP. It waits for -clients connections, runs -rounds FedAvg rounds
// with FedSZ-compressed uplinks, reports per-round test accuracy on a
// held-out synthetic set, and prints the final model summary.
//
// Transfers are pipelined end to end: the global model broadcast
// streams entry by entry, and each client's uplink decompresses tensor
// sections as they arrive — no side ever holds a full wire image, and
// with -bandwidth emulating a constrained WAN, decode time hides
// behind reception.
//
// Pair with cmd/fedszclient:
//
//	fedszserver -addr :9000 -clients 2 -rounds 5 &
//	fedszclient -addr localhost:9000 -shard 0 -shards 2 &
//	fedszclient -addr localhost:9000 -shard 1 -shards 2
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"fedsz"
	"fedsz/internal/dataset"
	"fedsz/internal/model"
	"fedsz/internal/nn"
	"fedsz/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fedszserver:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":9000", "listen address")
		clients   = flag.Int("clients", 2, "clients to wait for")
		rounds    = flag.Int("rounds", 5, "federated rounds")
		bound     = flag.Float64("bound", 1e-2, "relative error bound")
		comp      = flag.String("compressor", "sz2", "lossy compressor")
		bandwidth = flag.Float64("bandwidth", 0, "per-connection rate limit in Mbps (0 = unlimited)")
		seed      = flag.Int64("seed", 42, "seed (must match clients)")
	)
	flag.Parse()

	codec, err := fedsz.NewCodec(fedsz.WithCompressor(*comp), fedsz.WithRelBound(*bound))
	if err != nil {
		return err
	}

	// Server and clients carve one shared dataset (same spec + seed, so
	// identical class templates): clients shard the first 200×clients
	// samples, the server evaluates on the 400 samples after them.
	spec := dataset.FashionMNIST()
	full := spec.Generate(200*(*clients)+400, *seed)
	evalNet := nn.MobileNetV2Mini(spec.Dim, spec.Classes, *seed)
	x, y := full.Batch(200*(*clients), full.N)

	srv, err := transport.NewServer(transport.ServerConfig{
		Clients:      *clients,
		Rounds:       *rounds,
		Codec:        codec,
		BandwidthBps: fedsz.Mbps(*bandwidth),
		OnRound: func(round int, global *model.StateDict) {
			if err := evalNet.LoadStateDict(global); err != nil {
				fmt.Printf("round %d: eval error: %v\n", round, err)
				return
			}
			fmt.Printf("round %d: test accuracy %.3f\n", round, evalNet.Accuracy(x, y))
		},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("listening on %s for %d clients (%d rounds, %s @ %.0e)\n",
		ln.Addr(), *clients, *rounds, *comp, *bound)

	initial := nn.MobileNetV2Mini(spec.Dim, spec.Classes, *seed).StateDict()
	final, err := srv.Serve(ln, initial)
	if err != nil {
		return err
	}
	fmt.Printf("training complete: %d entries in final model\n", final.Len())
	return nil
}
