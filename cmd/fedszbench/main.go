// Command fedszbench regenerates the paper's tables and figures.
//
// Usage:
//
//	fedszbench -exp table1            # one experiment
//	fedszbench -exp all -scale 4      # everything, quarter-width models
//	fedszbench -list                  # show experiment ids
//	fedszbench -exp parallel -format json -o BENCH_parallel.json
//
// Scale 1 reproduces paper-size models (AlexNet ≈244 MB — minutes per
// experiment); the default scale 8 finishes each experiment in seconds
// while preserving every qualitative shape.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"fedsz"
	"fedsz/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fedszbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp    = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scale  = flag.Int("scale", 8, "model width divisor (1 = paper scale)")
		seed   = flag.Int64("seed", 42, "random seed")
		quick  = flag.Bool("quick", false, "trim sweeps for a fast smoke run")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		format = flag.String("format", "text", "output format: text, csv or json")
		out    = flag.String("o", "", "write output to a file instead of stdout")
		cpu    = flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
		mem    = flag.String("memprofile", "", "write an allocation profile taken after the run to this file")
		mdump  = flag.Bool("metrics-dump", false, "after the run, print the process metrics registry (Prometheus text) to stderr")
	)
	flag.StringVar(exp, "experiment", *exp, "alias for -exp")
	flag.Parse()

	if *cpu != "" {
		f, err := os.Create(*cpu)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *mem != "" {
		f, err := os.Create(*mem)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer func() {
			runtime.GC() // flush recently freed objects out of the profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "fedszbench: memprofile:", err)
			}
			f.Close()
		}()
	}

	if *list {
		fmt.Println("experiments:")
		for _, id := range bench.IDs() {
			fmt.Println(" ", id)
		}
		fmt.Println("compressor families (candidates for adaptive experiments):")
		for _, name := range fedsz.Families() {
			f, err := fedsz.FamilyByName(name)
			if err != nil {
				return err
			}
			var grid []string
			for _, s := range fedsz.FamilyGrid(f) {
				label := s.String()
				if !f.Bounded(s) {
					label += "*"
				}
				grid = append(grid, label)
			}
			fmt.Printf("  %-10s %-8s %s\n", name, f.Kind(), strings.Join(grid, " "))
		}
		fmt.Println("  (* = setting does not guarantee the error bound; adaptive probes it only with error feedback)")
		return nil
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	opts := bench.Options{Scale: *scale, Seed: *seed, Quick: *quick}
	ids := bench.IDs()
	if *exp != "all" {
		ids = []string{*exp}
	}
	if *mdump {
		// The dump goes to stderr so -o/-format table output stays
		// machine-parseable.
		defer fedsz.WriteMetrics(os.Stderr)
	}
	for _, id := range ids {
		tab, err := bench.Run(id, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		switch *format {
		case "csv":
			err = tab.RenderCSV(w)
		case "json":
			err = tab.RenderJSON(w)
		case "text":
			err = tab.Render(w)
		default:
			err = fmt.Errorf("unknown format %q", *format)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
