// Command fedszclient joins a fedszserver federation over TCP, trains
// locally on its shard of the synthetic dataset, and uploads
// FedSZ-compressed updates until the server signals completion.
// Uploads stream through the pipelined codec path: each tensor's
// compressed section goes onto the socket while the next tensor is
// still compressing, hiding compression time behind transmission.
//
// The session is resilient: a dropped connection re-dials under
// jittered exponential backoff (-retries/-backoff), re-registers and
// resumes participation — surviving coordinator restarts — and the
// process exits nonzero only once the retry budget is exhausted.
// -checksum emits CRC32C-checked frames so wire corruption is
// quarantined server-side instead of folded into the global model.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"fedsz"
	"fedsz/internal/dataset"
	"fedsz/internal/model"
	"fedsz/internal/nn"
	"fedsz/internal/obs"
	"fedsz/internal/transport"
)

// splitFamilies parses a comma-separated -families value ("" = nil,
// meaning every registered family).
func splitFamilies(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fedszclient:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "localhost:9000", "server address")
		shard     = flag.Int("shard", 0, "this client's shard index")
		shards    = flag.Int("shards", 2, "total shard count")
		bound     = flag.Float64("bound", 1e-2, "relative error bound (must match server)")
		comp      = flag.String("compressor", "sz2", "lossy compressor (must match server)")
		adaptive  = flag.Bool("adaptive", false, "pick compressor/bound per tensor at runtime and follow server bound directives")
		families  = flag.String("families", "", "adaptive: comma-separated compressor families to adapt over (empty = all registered; see fedszcompress -list)")
		uplink    = flag.Float64("uplink", 0, "adaptive: modeled uplink bandwidth in Mbps for Eqn. 1 scoring (0 = unknown)")
		checksum  = flag.Bool("checksum", false, "emit CRC32C-checked frames (must match server)")
		retries   = flag.Int("retries", 5, "reconnect attempts after a connection failure (-1 = retry forever)")
		backoff   = flag.Duration("backoff", 100*time.Millisecond, "base reconnect backoff (doubles per attempt, jittered, capped at 100x)")
		seed      = flag.Int64("seed", 42, "seed (must match server)")
		logLevel  = flag.String("log-level", "info", "log level: debug|info|warn|error")
		logFormat = flag.String("log-format", "text", "log format: text|json")
		metricsAt = flag.String("metrics-addr", "", "serve /metrics (codec + retry/backoff series), /debug/vars and /debug/pprof on this address (empty = off)")
		traceN    = flag.Int("trace-rounds", 0, "round spans to retain (0 = default 128; clients record no spans of their own, but the limit applies if a library embeds one)")
	)
	flag.Parse()
	if *shard < 0 || *shard >= *shards {
		return fmt.Errorf("shard %d out of range [0,%d)", *shard, *shards)
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	logger = logger.With("shard", *shard)

	// The resilient client's retry/backoff/session counters and the
	// codec's compression series are recorded regardless; -metrics-addr
	// makes them scrapable (fedsztop included).
	ms, err := fedsz.ServeObs(fedsz.ObsConfig{Addr: *metricsAt, TraceRounds: *traceN})
	if err != nil {
		return fmt.Errorf("metrics listener: %w", err)
	}
	if ms != nil {
		defer ms.Close()
		logger.Info("metrics listening", "addr", ms.Addr())
	}

	// Adaptive uplinks need no server-side coordination: the frames the
	// policy shapes are self-describing, and a bound-scheduling server
	// reaches the policy through the codec's round-bound hook.
	opts := []fedsz.Option{fedsz.WithCompressor(*comp), fedsz.WithRelBound(*bound)}
	if *checksum {
		opts = append(opts, fedsz.WithChecksum())
	}
	if *adaptive {
		policy, err := fedsz.NewAdaptivePolicy(fedsz.AdaptiveConfig{
			Families:     splitFamilies(*families),
			BaseBound:    *bound,
			BandwidthBps: fedsz.Mbps(*uplink),
		})
		if err != nil {
			return err
		}
		opts = append(opts, fedsz.WithAdaptive(policy))
	}
	codec, err := fedsz.NewCodec(opts...)
	if err != nil {
		return err
	}

	// The first 200×shards samples of the shared dataset are the
	// training pool (the server holds out the tail for evaluation).
	spec := dataset.FashionMNIST()
	pool := spec.Generate(200*(*shards)+400, *seed)
	data := (&dataset.Dataset{
		Name: pool.Name, X: pool.X[:200*(*shards)*pool.Dim], Y: pool.Y[:200*(*shards)],
		N: 200 * (*shards), Dim: pool.Dim, Classes: pool.Classes,
	}).Split(*shards)[*shard]
	net_ := nn.MobileNetV2Mini(spec.Dim, spec.Classes, *seed)

	logger.Info("joining federation",
		"addr", *addr, "shards", *shards, "local_samples", data.N, "retries", *retries)

	// The resilient session survives coordinator restarts and transient
	// network faults: a dropped connection backs off exponentially
	// (jittered) and redials, any session that completes at least one
	// round refills the retry budget, and the process exits nonzero
	// only once the budget is truly exhausted — or on a protocol error,
	// which no amount of retrying fixes.
	return transport.RunResilientClient(transport.ClientConfig{
		Dial:        func() (net.Conn, error) { return net.Dial("tcp", *addr) },
		Codec:       codec,
		MaxRetries:  *retries,
		BaseBackoff: *backoff,
		MaxBackoff:  100 * *backoff,
		Seed:        *seed + int64(*shard),
		Logger:      logger,
		Train: func(round int, global *model.StateDict) (*model.StateDict, int, error) {
			if err := net_.LoadStateDict(global); err != nil {
				return nil, 0, err
			}
			data.Shuffle(*seed + int64(round))
			var loss float32
			for lo := 0; lo+20 <= data.N; lo += 20 {
				x, y := data.Batch(lo, lo+20)
				loss = net_.TrainBatch(x, y, 0.01, 0.9)
			}
			logger.Info("round trained", "round", round, "loss", fmt.Sprintf("%.4f", loss))
			return net_.StateDict(), data.N, nil
		},
	})
}
