// Command fedszedge runs a FedSZ regional edge aggregator: it joins an
// upstream coordinator (a fedszserver, or another fedszedge — tiers
// nest) as a single participant, serves its own region of clients on
// the ordinary client protocol, and per round folds the region's
// compressed updates into a streaming sharded aggregator, forwarding
// ONE partial-sum frame upstream instead of every client's uplink.
//
// The coordinator's fan-in becomes the number of edges, not the number
// of clients — the tier that takes a federation from thousands to
// hundreds of thousands of participants. Partial sums are unnormalized
// (Σ weight·value plus total weight), so the committed global model is
// bit-identical to the flat federation's; -checksum stamps each
// partial frame with CRC32C and -lossless optionally packs it for the
// WAN hop.
//
// Round directives relay through the tier: the upstream's per-round
// error bound and merged compression-plan prior are re-broadcast to
// the region, and the region's plan votes are merged into the partial
// frame so the coordinator sees population-wide consensus.
//
// A three-process federation:
//
//	fedszserver -addr :9000 -min-clients 2 -rounds 5 &
//	fedszedge -listen :9100 -upstream localhost:9000 -min-clients 2 &
//	fedszclient -addr localhost:9100 -shard 0 -shards 2 &
//	fedszclient -addr localhost:9100 -shard 1 -shards 2
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"fedsz"
	"fedsz/internal/obs"
	"fedsz/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fedszedge:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", ":9100", "region listen address (clients and nested edges join here)")
		upstream  = flag.String("upstream", "localhost:9000", "upstream coordinator or edge address")
		minCli    = flag.Int("min-clients", 1, "region members required before the first regional round")
		deadline  = flag.Duration("deadline", 0, "regional straggler cutoff per round (0 = wait for everyone)")
		bound     = flag.Float64("bound", 1e-2, "relative error bound (must match clients)")
		comp      = flag.String("compressor", "sz2", "lossy compressor (must match clients)")
		checksum  = flag.Bool("checksum", false, "require CRC32C-checked client frames and stamp partial frames")
		lossless  = flag.String("lossless", "", "pack partial frames with this lossless codec for the WAN hop (see fedszcompress -list)")
		bandwidth = flag.Float64("bandwidth", 0, "per-connection rate limit in Mbps, upstream included (0 = unlimited)")
		shards    = flag.Int("shards", 0, "regional aggregator shard count (0 = auto)")
		verbose   = flag.Bool("v", false, "shorthand for -log-level debug")
		logLevel  = flag.String("log-level", "info", "log level: debug|info|warn|error")
		logFormat = flag.String("log-format", "text", "log format: text|json")
		metricsAt = flag.String("metrics-addr", "", "serve /metrics, /rounds, /rounds/tree, /debug/vars and /debug/pprof on this address (empty = off)")
		traceN    = flag.Int("trace-rounds", 0, "round spans to retain for /rounds and /rounds/tree (0 = default 128)")
	)
	flag.Parse()

	if *verbose && *logLevel == "info" {
		*logLevel = "debug"
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}

	ms, err := fedsz.ServeObs(fedsz.ObsConfig{Addr: *metricsAt, TraceRounds: *traceN})
	if err != nil {
		return fmt.Errorf("metrics listener: %w", err)
	}
	if ms != nil {
		defer ms.Close()
		logger.Info("metrics listening", "addr", ms.Addr())
	}

	codecOpts := []fedsz.Option{fedsz.WithCompressor(*comp), fedsz.WithRelBound(*bound)}
	if *checksum {
		codecOpts = append(codecOpts, fedsz.WithChecksum())
	}
	codec, err := fedsz.NewCodec(codecOpts...)
	if err != nil {
		return err
	}

	logf := func(format string, args ...interface{}) {
		logger.Debug(fmt.Sprintf(format, args...))
	}
	edge, err := transport.NewEdge(transport.EdgeConfig{
		Upstream:      func() (net.Conn, error) { return net.Dial("tcp", *upstream) },
		Codec:         codec,
		MinClients:    *minCli,
		RoundDeadline: *deadline,
		BandwidthBps:  fedsz.Mbps(*bandwidth),
		Shards:        *shards,
		Checksum:      *checksum,
		Lossless:      *lossless,
		Logf:          logf,
		OnPartial: func(round, updates, wireBytes int) {
			logger.Info("forwarded partial sum",
				"round", round, "updates", updates, "wire_kb", fmt.Sprintf("%.1f", float64(wireBytes)/1e3))
		},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	logger.Info("edge serving region",
		"listen", ln.Addr().String(), "upstream", *upstream,
		"min_members", *minCli, "deadline", time.Duration(*deadline).String())
	return edge.Serve(ln)
}
