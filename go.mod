module fedsz

go 1.22
